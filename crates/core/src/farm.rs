//! The solver farm: many concurrent solves on one runtime.
//!
//! The ROADMAP's "millions of users" scenario for this engine is
//! solver-as-a-service — hundreds of independent meshes/solves in flight
//! on one shared [`Runtime`], not one giant mesh.
//! [`Op2::with_runtime`] already lets N worlds share a scheduler; a
//! [`SolverFarm`] is the layer that makes that production-shaped:
//!
//! * **Submission.** Tenants register once ([`SolverFarm::register`])
//!   with a [`Priority`] class, then submit jobs — closures receiving a
//!   freshly built tenant [`Op2`] world — through a **bounded queue**
//!   ([`FarmConfig::queue_capacity`]). A full queue blocks the submitter
//!   until a lane drains it.
//! * **Weighted-fair scheduling.** Dispatch is stride scheduling over
//!   per-tenant virtual time: each dispatch advances the tenant's vtime
//!   by `STRIDE / weight`, and lanes always pick the ready tenant with
//!   the smallest vtime. A saturating high-priority tenant therefore
//!   cannot indefinitely starve a low-priority one — between any
//!   `weight(high)/weight(low)` high dispatches, the low tenant's vtime
//!   becomes the minimum and it runs (bounded wait).
//! * **Backpressure windows.** The PR 5 drained-window pattern,
//!   generalized per tenant: a tenant may have at most
//!   [window](FarmConfig::window) jobs (loop-epochs) in flight —
//!   submitted but not complete. The W+1-th `submit` **parks on the
//!   oldest in-flight job's future** until it completes, exactly like a
//!   solver iteration window parking on its oldest [`LoopHandle`].
//! * **Quotas.** At most [quota](FarmConfig::quota) jobs of one tenant
//!   execute concurrently, so a hot tenant cannot occupy every lane.
//! * **Warm-state sharing.** All tenant worlds are built with one shared
//!   [`SpecShare`] (loop schedules) and one shared
//!   [`GranularityFeedback`] (measured per-element kernel cost). Both key
//!   on *content signatures* ([`Set::signature`](crate::Set::signature),
//!   [`Map::signature`](crate::Map::signature)), so the second tenant to
//!   run a given solver shape hits the first tenant's warm schedules and
//!   resolved granularities on its very first submission.
//! * **Observability.** Every tenant owns an
//!   `op2.tenant.<name>.{submitted,completed,panics,window_waits,queue_waits}`
//!   counter namespace in [`hpx_rt::stats`], next to the farm-wide
//!   `op2.farm.*` counters.
//!
//! Jobs run on dedicated **lane** OS threads (never on runtime workers —
//! a job blocks in [`Op2::fence`], and parking a worker on the work it is
//! itself supposed to help execute is the classic help-first inversion),
//! while every loop the job submits executes on the shared worker pool.
//!
//! ```
//! use op2_core::farm::{FarmConfig, Priority, SolverFarm};
//!
//! let farm = SolverFarm::new(FarmConfig::with_threads(2));
//! let t = farm.register("acme", Priority::Normal);
//! let h = farm.submit(&t, |op2| {
//!     let cells = op2.decl_set(64, "cells");
//!     let q = op2.decl_dat(&cells, 1, "q", vec![1.0f64; 64]);
//!     op2.loop_("scale", &cells)
//!         .arg(op2_core::args::rw(&q))
//!         .run(|q: &mut [f64]| q[0] *= 2.0);
//! });
//! h.wait();
//! assert_eq!(farm.tenant_completed(&t), 1);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use hpx_rt::{channel, GranularityFeedback, Promise, Runtime, SharedFuture};

use crate::config::Op2Config;
use crate::driver::SpecShare;
use crate::world::Op2;

/// Scheduling weight classes. Dispatch frequency is proportional to
/// weight: under saturation a `High` tenant runs 4 jobs for every 1 a
/// `Low` tenant runs — and never more, which is what bounds the low
/// tenant's wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// 4x the scheduling share of [`Priority::Low`].
    High,
    /// 2x the scheduling share of [`Priority::Low`].
    #[default]
    Normal,
    /// Baseline share.
    Low,
}

impl Priority {
    /// The stride-scheduling weight of this class.
    pub fn weight(self) -> u64 {
        match self {
            Priority::High => 4,
            Priority::Normal => 2,
            Priority::Low => 1,
        }
    }
}

/// Per-tenant registration parameters; `None` fields fall back to the
/// farm-wide defaults in [`FarmConfig`].
#[derive(Debug, Clone, Default)]
pub struct TenantSpec {
    /// Scheduling weight class.
    pub priority: Priority,
    /// In-flight window override (see [`FarmConfig::window`]).
    pub window: Option<usize>,
    /// Concurrency quota override (see [`FarmConfig::quota`]).
    pub quota: Option<usize>,
}

/// Configuration of a [`SolverFarm`].
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Worker threads of the shared runtime all tenant loops execute on.
    pub threads: usize,
    /// Dispatcher lanes — dedicated OS threads that pop jobs and drive
    /// tenant worlds. The farm runs at most `lanes` jobs concurrently.
    pub lanes: usize,
    /// Bound of the submission queue (jobs accepted but not yet
    /// dispatched, across all tenants). A full queue blocks submitters.
    pub queue_capacity: usize,
    /// Default per-tenant backpressure window: the maximum number of a
    /// tenant's jobs in flight (submitted, not complete) before its
    /// submitter parks on the oldest job's future. `0` disables the
    /// window.
    pub window: usize,
    /// Default per-tenant concurrency quota: the maximum number of a
    /// tenant's jobs executing at once. Clamped to at least 1.
    pub quota: usize,
    /// Base configuration of every tenant world. The farm overrides its
    /// `shared_specs` / `shared_feedback` with the farm-wide handles (and
    /// honors an explicit `shared_feedback` as the farm-wide table).
    pub world: Op2Config,
}

impl FarmConfig {
    /// A farm whose shared runtime has `threads` workers: half as many
    /// lanes (at least 2), a 64-job queue, window 4, and a quota that
    /// keeps any single tenant off at least one lane.
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        let lanes = (threads / 2).clamp(2, 8);
        FarmConfig {
            threads,
            lanes,
            queue_capacity: 64,
            window: 4,
            quota: (lanes - 1).max(1),
            world: Op2Config::dataflow(threads),
        }
    }

    /// Overrides the lane count.
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Overrides the submission-queue bound.
    #[must_use]
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Overrides the default per-tenant window.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Overrides the default per-tenant quota.
    #[must_use]
    pub fn with_quota(mut self, quota: usize) -> Self {
        self.quota = quota.max(1);
        self
    }

    /// Overrides the base tenant-world configuration.
    #[must_use]
    pub fn with_world(mut self, world: Op2Config) -> Self {
        self.world = world;
        self
    }
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig::with_threads(std::thread::available_parallelism().map_or(2, |n| n.get()))
    }
}

/// Handle to a registered tenant. Only [`SolverFarm::register`] creates
/// these; the farm it came from is the only farm that accepts it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TenantId {
    name: Arc<str>,
    idx: usize,
}

impl TenantId {
    /// The tenant's registered name — also its counter namespace:
    /// `op2.tenant.<name>.*`.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// A submitted job's completion outcome: `Err` carries the panic message
/// of a job that panicked (the farm survives tenant panics; the panic
/// surfaces on [`JobHandle::wait`]).
pub type JobOutcome = Result<(), String>;

/// Handle to one submitted job (one tenant loop-epoch). Cloneable; the
/// completion future is shared.
#[derive(Debug, Clone)]
pub struct JobHandle {
    tenant: TenantId,
    done: SharedFuture<JobOutcome>,
}

impl JobHandle {
    /// The submitting tenant.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// True once the job has completed (successfully or not).
    pub fn is_done(&self) -> bool {
        self.done.is_ready()
    }

    /// Blocks until the job completes, panicking if the job panicked.
    pub fn wait(&self) {
        if let Err(msg) = self.done.get() {
            panic!("farm job of tenant '{}' panicked: {msg}", self.tenant);
        }
    }

    /// Blocks until the job completes and returns its outcome without
    /// re-panicking.
    pub fn outcome(&self) -> JobOutcome {
        self.done.get()
    }

    /// The completion future — what a window-limited submitter parks on.
    pub fn future(&self) -> SharedFuture<JobOutcome> {
        self.done.clone()
    }
}

/// Per-tenant counter handles in the `op2.tenant.<name>.*` namespace of
/// [`hpx_rt::stats`] (held as `Arc`s so the hot paths never re-lock the
/// registry).
struct TenantCounters {
    submitted: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
    panics: Arc<AtomicU64>,
    window_waits: Arc<AtomicU64>,
    queue_waits: Arc<AtomicU64>,
}

impl TenantCounters {
    fn new(name: &str) -> Self {
        let c = |suffix: &str| hpx_rt::stats::counter_named(&format!("op2.tenant.{name}.{suffix}"));
        TenantCounters {
            submitted: c("submitted"),
            completed: c("completed"),
            panics: c("panics"),
            window_waits: c("window_waits"),
            queue_waits: c("queue_waits"),
        }
    }
}

struct Job {
    run: Box<dyn FnOnce(&Op2) + Send>,
    promise: Promise<JobOutcome>,
}

struct TenantState {
    id: TenantId,
    weight: u64,
    /// Stride-scheduling virtual time: advanced by `STRIDE / weight` per
    /// dispatch; lanes pick the ready tenant with the smallest value.
    vtime: u64,
    window: usize,
    quota: usize,
    queued: VecDeque<Job>,
    running: usize,
    /// Completion futures of in-flight jobs (submitted, not yet observed
    /// complete), oldest first — the queue a window-limited submitter
    /// drains, exactly the PR 5 solver-window pattern one level up.
    inflight: VecDeque<SharedFuture<JobOutcome>>,
    submitted: u64,
    completed: u64,
    counters: TenantCounters,
}

impl TenantState {
    fn dispatchable(&self) -> bool {
        !self.queued.is_empty() && self.running < self.quota
    }
}

struct State {
    tenants: Vec<TenantState>,
    queued_total: usize,
    running_total: usize,
    shutdown: bool,
}

impl State {
    /// Global virtual time: the minimum vtime among *active* tenants
    /// (queued or running work), falling back to the maximum ever reached
    /// — what a newly active tenant's vtime is aligned to so idle periods
    /// don't bank an unbounded burst credit.
    fn gvt(&self) -> u64 {
        self.tenants
            .iter()
            .filter(|t| !t.queued.is_empty() || t.running > 0)
            .map(|t| t.vtime)
            .min()
            .or_else(|| self.tenants.iter().map(|t| t.vtime).max())
            .unwrap_or(0)
    }

    /// The tenant the next free lane should serve: dispatchable (queued
    /// work, under quota), smallest `(vtime, registration order)`.
    fn pick(&self) -> Option<usize> {
        (0..self.tenants.len())
            .filter(|&i| self.tenants[i].dispatchable())
            .min_by_key(|&i| self.tenants[i].vtime)
    }
}

struct Shared {
    state: Mutex<State>,
    /// Lanes wait here for a dispatchable job.
    work: Condvar,
    /// Submitters wait here for submission-queue space.
    space: Condvar,
    /// [`SolverFarm::drain`] waits here for the farm to go idle.
    idle: Condvar,
}

/// Common multiple of every [`Priority::weight`], so vtime strides are
/// exact integers.
const STRIDE: u64 = 64;

/// A multi-tenant solver service on one shared [`Runtime`] — see the
/// [module docs](self) for the scheduling, backpressure and warm-sharing
/// semantics.
///
/// Dropping the farm **drains it**: every accepted job still runs before
/// the lane threads exit.
pub struct SolverFarm {
    rt: Arc<Runtime>,
    cfg: FarmConfig,
    /// The tenant-world config: `cfg.world` with the farm-wide shared
    /// spec cache and feedback table installed.
    world_cfg: Op2Config,
    specs: SpecShare,
    feedback: GranularityFeedback,
    shared: Arc<Shared>,
    lanes: Vec<JoinHandle<()>>,
}

impl SolverFarm {
    /// Builds a farm with its own worker pool.
    pub fn new(cfg: FarmConfig) -> Self {
        let rt = Arc::new(Runtime::with_name(cfg.threads.max(1), "op2-farm-worker"));
        Self::with_runtime(cfg, rt)
    }

    /// Builds a farm on an existing runtime (e.g. one already hosting
    /// [`Op2::with_runtime`] worlds of the embedding application).
    pub fn with_runtime(cfg: FarmConfig, rt: Arc<Runtime>) -> Self {
        // Farm-wide warm state. An explicit shared_feedback in the base
        // world config becomes the farm table; otherwise a PersistentAuto
        // chunker's own table is promoted, else a fresh accumulator on the
        // config clock.
        let specs = cfg.world.shared_specs.clone().unwrap_or_default();
        let feedback = match (&cfg.world.shared_feedback, &cfg.world.chunk) {
            (Some(fb), _) => fb.clone(),
            (None, hpx_rt::ChunkPolicy::PersistentAuto(h)) => h.feedback().clone(),
            (None, _) => GranularityFeedback::with_clock(cfg.world.clock.clone()),
        };
        let world_cfg = cfg
            .world
            .clone()
            .with_shared_specs(specs.clone())
            .with_shared_feedback(feedback.clone());
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                tenants: Vec::new(),
                queued_total: 0,
                running_total: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            idle: Condvar::new(),
        });
        let lanes = (0..cfg.lanes.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rt = Arc::clone(&rt);
                let world_cfg = world_cfg.clone();
                std::thread::Builder::new()
                    .name(format!("op2-farm-lane-{i}"))
                    .spawn(move || lane_loop(&shared, &rt, &world_cfg))
                    .expect("spawn farm lane")
            })
            .collect();
        SolverFarm {
            rt,
            cfg,
            world_cfg,
            specs,
            feedback,
            shared,
            lanes,
        }
    }

    /// Registers a tenant under the farm-wide window/quota defaults.
    pub fn register(&self, name: &str, priority: Priority) -> TenantId {
        self.register_with(
            name,
            TenantSpec {
                priority,
                ..TenantSpec::default()
            },
        )
    }

    /// Registers a tenant with explicit overrides. Panics on an empty or
    /// duplicate name (the name is the tenant's counter namespace).
    pub fn register_with(&self, name: &str, spec: TenantSpec) -> TenantId {
        assert!(!name.is_empty(), "tenant name must be non-empty");
        let mut st = self.shared.state.lock();
        assert!(
            st.tenants.iter().all(|t| &*t.id.name != name),
            "tenant '{name}' already registered"
        );
        let id = TenantId {
            name: Arc::from(name),
            idx: st.tenants.len(),
        };
        // Start at the current global virtual time: no credit for the
        // epochs the farm ran before this tenant existed.
        let vtime = st.gvt();
        st.tenants.push(TenantState {
            id: id.clone(),
            weight: spec.priority.weight(),
            vtime,
            window: spec.window.unwrap_or(self.cfg.window),
            quota: spec.quota.unwrap_or(self.cfg.quota).max(1),
            queued: VecDeque::new(),
            running: 0,
            inflight: VecDeque::new(),
            submitted: 0,
            completed: 0,
            counters: TenantCounters::new(name),
        });
        id
    }

    /// Submits one job — one tenant loop-epoch. `job` receives a freshly
    /// built tenant world (sharing the farm runtime and warm state) on a
    /// lane thread; the epoch completes when the closure returns **and**
    /// the world's outstanding loops have drained ([`Op2::fence`]).
    ///
    /// Blocks while the tenant is at its in-flight window (parking on the
    /// oldest in-flight job's future) or the submission queue is full.
    pub fn submit(&self, tenant: &TenantId, job: impl FnOnce(&Op2) + Send + 'static) -> JobHandle {
        let (promise, fut) = channel::<JobOutcome>();
        let done = fut.share();
        let mut st = self.shared.state.lock();
        assert!(
            st.tenants
                .get(tenant.idx)
                .is_some_and(|t| t.id.name == tenant.name),
            "tenant '{tenant}' is not registered with this farm"
        );
        loop {
            let t = &mut st.tenants[tenant.idx];
            while t.inflight.front().is_some_and(|f| f.is_ready()) {
                t.inflight.pop_front();
            }
            // Backpressure window: park on the *oldest* in-flight epoch's
            // future — the drained-window pattern of the airfoil solver
            // (PR 5), generalized per tenant.
            if t.window > 0 && t.inflight.len() >= t.window {
                let oldest = t.inflight.front().expect("non-empty window").clone();
                t.counters.window_waits.fetch_add(1, Ordering::Relaxed);
                drop(st);
                oldest.wait();
                st = self.shared.state.lock();
                continue;
            }
            if st.queued_total >= self.cfg.queue_capacity {
                st.tenants[tenant.idx]
                    .counters
                    .queue_waits
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.space.wait(&mut st);
                continue;
            }
            break;
        }
        // A tenant going active re-aligns to the global virtual time so an
        // idle period doesn't bank burst credit against active tenants.
        let gvt = st.gvt();
        let t = &mut st.tenants[tenant.idx];
        if t.queued.is_empty() && t.running == 0 {
            t.vtime = t.vtime.max(gvt);
        }
        t.queued.push_back(Job {
            run: Box::new(job),
            promise,
        });
        t.inflight.push_back(done.clone());
        t.submitted += 1;
        t.counters.submitted.fetch_add(1, Ordering::Relaxed);
        st.queued_total += 1;
        drop(st);
        hpx_rt::static_counter!("op2.farm.submitted").fetch_add(1, Ordering::Relaxed);
        self.shared.work.notify_one();
        JobHandle {
            tenant: tenant.clone(),
            done,
        }
    }

    /// Blocks until every accepted job has completed.
    pub fn drain(&self) {
        let mut st = self.shared.state.lock();
        while st.queued_total > 0 || st.running_total > 0 {
            self.shared.idle.wait(&mut st);
        }
    }

    /// The shared runtime every tenant loop executes on.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    /// The farm-wide loop-spec cache all tenant worlds resolve through.
    pub fn spec_share(&self) -> &SpecShare {
        &self.specs
    }

    /// The farm-wide measured-cost table all tenant worlds resolve
    /// adaptive granularity from.
    pub fn feedback(&self) -> &GranularityFeedback {
        &self.feedback
    }

    /// The effective tenant-world configuration (base config + shared
    /// warm-state handles) — what every job's `&Op2` is built from.
    pub fn world_config(&self) -> &Op2Config {
        &self.world_cfg
    }

    /// The farm configuration.
    pub fn config(&self) -> &FarmConfig {
        &self.cfg
    }

    /// Jobs of `tenant` currently in flight: submitted (queued or
    /// running) and not yet complete. Bounded by the tenant's window.
    pub fn tenant_inflight(&self, tenant: &TenantId) -> usize {
        let st = self.shared.state.lock();
        st.tenants[tenant.idx].queued.len() + st.tenants[tenant.idx].running
    }

    /// Jobs of `tenant` executing right now. Bounded by the tenant's
    /// quota.
    pub fn tenant_running(&self, tenant: &TenantId) -> usize {
        self.shared.state.lock().tenants[tenant.idx].running
    }

    /// Completed job count of `tenant`.
    pub fn tenant_completed(&self, tenant: &TenantId) -> u64 {
        self.shared.state.lock().tenants[tenant.idx].completed
    }

    /// Jobs accepted but not yet dispatched, across all tenants. Bounded
    /// by [`FarmConfig::queue_capacity`].
    pub fn queued(&self) -> usize {
        self.shared.state.lock().queued_total
    }
}

impl Drop for SolverFarm {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for lane in self.lanes.drain(..) {
            let _ = lane.join();
        }
    }
}

impl std::fmt::Debug for SolverFarm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.state.lock();
        f.debug_struct("SolverFarm")
            .field("tenants", &st.tenants.len())
            .field("queued", &st.queued_total)
            .field("running", &st.running_total)
            .field("lanes", &self.lanes.len())
            .finish()
    }
}

fn lane_loop(shared: &Shared, rt: &Arc<Runtime>, world_cfg: &Op2Config) {
    loop {
        let (job, tidx) = {
            let mut st = shared.state.lock();
            loop {
                if let Some(i) = st.pick() {
                    let t = &mut st.tenants[i];
                    let job = t.queued.pop_front().expect("picked tenant has a job");
                    // Stride scheduling: a dispatch costs STRIDE/weight of
                    // virtual time, so heavier tenants are picked
                    // proportionally more often — and light tenants are
                    // picked *eventually*, which is the fairness bound.
                    t.vtime = t.vtime.wrapping_add(STRIDE / t.weight.max(1));
                    t.running += 1;
                    st.queued_total -= 1;
                    st.running_total += 1;
                    break (job, i);
                }
                // Exit only when no accepted work remains: shutdown
                // drains, it does not abandon promises.
                if st.shutdown && st.queued_total == 0 {
                    return;
                }
                shared.work.wait(&mut st);
            }
        };
        shared.space.notify_all();
        hpx_rt::static_counter!("op2.farm.dispatched").fetch_add(1, Ordering::Relaxed);

        // One tenant world per epoch: own declarations and plan cache,
        // shared runtime and shared (signature-keyed) warm state.
        let world = Op2::with_runtime(world_cfg.clone(), Arc::clone(rt));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            (job.run)(&world);
            // The epoch is in flight until its loops drain — a window of
            // W epochs is a window of W *completed-or-running* solves,
            // not W accepted closures.
            world.fence();
        }))
        .map_err(|p| panic_message(&*p));

        let errored = outcome.is_err();
        // Bookkeeping BEFORE fulfilling the future, so a waiter that wakes
        // from `JobHandle::wait` observes `tenant_completed` (and the
        // counters) already including this job.
        {
            let mut st = shared.state.lock();
            let t = &mut st.tenants[tidx];
            t.running -= 1;
            t.completed += 1;
            t.counters.completed.fetch_add(1, Ordering::Relaxed);
            if errored {
                t.counters.panics.fetch_add(1, Ordering::Relaxed);
                hpx_rt::static_counter!("op2.farm.panics").fetch_add(1, Ordering::Relaxed);
            }
            st.running_total -= 1;
            if st.queued_total == 0 && st.running_total == 0 {
                shared.idle.notify_all();
            }
        }
        hpx_rt::static_counter!("op2.farm.completed").fetch_add(1, Ordering::Relaxed);
        // Wakes window-parked submitters and handle waiters.
        job.promise.set_value(outcome);
        // A completion can unblock a quota-limited tenant; make sure some
        // waiting lane re-picks.
        shared.work.notify_all();
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_weights_are_ordered() {
        assert!(Priority::High.weight() > Priority::Normal.weight());
        assert!(Priority::Normal.weight() > Priority::Low.weight());
        assert_eq!(STRIDE % Priority::High.weight(), 0);
        assert_eq!(STRIDE % Priority::Normal.weight(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_tenant_names_rejected() {
        let farm = SolverFarm::new(FarmConfig::with_threads(1).with_lanes(1));
        let _a = farm.register("acme", Priority::Normal);
        let _b = farm.register("acme", Priority::Low);
    }

    #[test]
    fn drop_drains_accepted_jobs() {
        use std::sync::atomic::AtomicUsize;
        let ran = Arc::new(AtomicUsize::new(0));
        let handles: Vec<JobHandle>;
        {
            let farm = SolverFarm::new(FarmConfig::with_threads(2).with_lanes(1));
            let t = farm.register("acme", Priority::Normal);
            handles = (0..5)
                .map(|_| {
                    let ran = Arc::clone(&ran);
                    farm.submit(&t, move |_| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            // Farm dropped here with jobs possibly still queued.
        }
        for h in &handles {
            h.wait();
        }
        assert_eq!(ran.load(Ordering::Relaxed), 5);
    }
}
