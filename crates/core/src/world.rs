//! The OP2 context: declaration API, runtime handle, plan cache and
//! bookkeeping.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use hpx_rt::{ChunkPolicy, GranularityFeedback, Runtime, SharedFuture};

use crate::config::Op2Config;
use crate::dat::{Dat, Layout};
use crate::driver::SpecShare;
use crate::map::Map;
use crate::plan::PlanCache;
use crate::set::Set;
use crate::types::OpType;

/// Cumulative statistics of one named loop.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoopStat {
    /// Number of invocations.
    pub invocations: u64,
    /// Total execution time (submission-to-finalize span, measured inside
    /// the executing tasks for the dataflow backend).
    pub total: Duration,
}

pub(crate) type StatsHandle = Arc<Mutex<HashMap<String, LoopStat>>>;

/// An OP2 execution context (the equivalent of `op_init` + the library
/// state). Owns the thread pool; declaration methods mirror the OP2 API.
///
/// ```
/// use op2_core::{Op2, Op2Config};
/// let op2 = Op2::new(Op2Config::dataflow(2));
/// let nodes = op2.decl_set(9, "nodes");
/// let edges = op2.decl_set(12, "edges");
/// let x = op2.decl_dat(&nodes, 1, "x", vec![0.0f64; 9]);
/// assert_eq!(x.set().size(), 9);
/// # let _ = edges;
/// ```
pub struct Op2 {
    rt: Arc<Runtime>,
    config: Op2Config,
    plans: PlanCache,
    /// Loop-spec cache: private by default, one shared [`SpecShare`]
    /// handle across worlds when the config installs one (farm tenants).
    specs: crate::driver::SpecShare,
    /// Measured per-(kernel, set) cost the Dataflow driver resolves
    /// adaptive node granularity from. Under a
    /// [`ChunkPolicy::PersistentAuto`] config this is the chunker's own
    /// accumulator (shared with every clone of the handle — e.g. sibling
    /// ranks); otherwise it is private to the context, measuring through
    /// the config's clock.
    feedback: GranularityFeedback,
    outstanding: Arc<Mutex<Vec<SharedFuture<()>>>>,
    stats: StatsHandle,
}

/// The per-rank handles communication nodes need after the owning [`Op2`]
/// is out of reach: where to schedule (the shared runtime) and where to
/// register completions for [`Op2::fence`]. The implicit halo-exchange
/// ring stores one per rank (see [`crate::locality`]).
#[derive(Clone)]
pub(crate) struct CommHooks {
    rt: Arc<Runtime>,
    outstanding: Arc<Mutex<Vec<SharedFuture<()>>>>,
}

impl CommHooks {
    /// The rank's task runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Registers a completion future for the rank's fence.
    pub fn track(&self, done: SharedFuture<()>) {
        track_in(&self.outstanding, done);
    }
}

fn track_in(outstanding: &Mutex<Vec<SharedFuture<()>>>, done: SharedFuture<()>) {
    let mut o = outstanding.lock();
    o.push(done);
    // Bound growth across long runs: completed futures need no fence.
    if o.len() > 1024 {
        o.retain(|f| !f.is_ready());
    }
}

impl Op2 {
    /// Creates a context with its own worker pool.
    pub fn new(config: Op2Config) -> Self {
        let rt = Arc::new(Runtime::with_name(config.threads, "op2-worker"));
        Self::with_runtime(config, rt)
    }

    /// Creates a context on an existing runtime. This is how the
    /// multi-locality layer ([`crate::locality`]) simulates ranks: every
    /// rank is its own `Op2` context (own plan cache, stats, declared
    /// entities) but all ranks share one worker pool, so halo-exchange
    /// tasks and loop blocks of different ranks interleave freely.
    pub fn with_runtime(config: Op2Config, rt: Arc<Runtime>) -> Self {
        // An explicitly shared feedback table overrides the policy default
        // (the farm installs one per-farm table so every tenant world
        // resolves from the same measured costs).
        let feedback = match (&config.shared_feedback, &config.chunk) {
            (Some(fb), _) => fb.clone(),
            (None, ChunkPolicy::PersistentAuto(h)) => h.feedback().clone(),
            (None, _) => GranularityFeedback::with_clock(config.clock.clone()),
        };
        // A rank-tagged world attributes its measurements per rank (the
        // table itself stays shared across tagged clones).
        let feedback = match config.feedback_rank {
            Some(r) => feedback.for_rank(r),
            None => feedback,
        };
        let specs = config.shared_specs.clone().unwrap_or_default();
        Op2 {
            rt,
            config,
            plans: PlanCache::default(),
            specs,
            feedback,
            outstanding: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    pub(crate) fn comm_hooks(&self) -> CommHooks {
        CommHooks {
            rt: Arc::clone(&self.rt),
            outstanding: Arc::clone(&self.outstanding),
        }
    }

    /// The underlying task runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    pub(crate) fn runtime_arc(&self) -> Arc<Runtime> {
        Arc::clone(&self.rt)
    }

    /// The active configuration.
    pub fn config(&self) -> &Op2Config {
        &self.config
    }

    /// Declares a set of `size` elements (`op_decl_set`).
    pub fn decl_set(&self, size: usize, name: &str) -> Set {
        Set::new(size, name)
    }

    /// Declares a map (`op_decl_map`); validates arity and ranges.
    pub fn decl_map(&self, from: &Set, to: &Set, dim: usize, indices: Vec<u32>, name: &str) -> Map {
        Map::new(from, to, dim, indices, name)
    }

    /// Declares a map whose table may index `halo_targets` rows beyond the
    /// target set — local ids of remote-owned elements mirrored in the
    /// halo region of dats declared with [`Op2::decl_dat_halo`]. This is
    /// the sharded form of `op_decl_map` (see [`crate::locality`]).
    pub fn decl_map_halo(
        &self,
        from: &Set,
        to: &Set,
        dim: usize,
        indices: Vec<u32>,
        name: &str,
        halo_targets: usize,
    ) -> Map {
        Map::with_halo(from, to, dim, indices, name, halo_targets)
    }

    /// Declares data on a set (`op_decl_dat`); `data` holds
    /// `set.size() * dim` scalars, row-major. The dat's dependency table
    /// is partitioned to this context's mini-partition block size, so loop
    /// blocks and dependency blocks coincide under the dataflow backend.
    /// The physical layout follows [`Op2Config::layout`]; use
    /// [`Op2::decl_dat_layout`] for a per-dat override.
    pub fn decl_dat<T: OpType>(&self, set: &Set, dim: usize, name: &str, data: Vec<T>) -> Dat<T> {
        self.decl_dat_layout(set, dim, name, data, self.config.layout)
    }

    /// [`Op2::decl_dat`] with an explicit AoS/SoA [`Layout`] policy.
    /// `data` is always canonical row-major; an SoA dat transposes it into
    /// `dim` contiguous component planes on declaration. Kernels, guards
    /// and the dependency engine see the same logical rows either way.
    pub fn decl_dat_layout<T: OpType>(
        &self,
        set: &Set,
        dim: usize,
        name: &str,
        data: Vec<T>,
        layout: Layout,
    ) -> Dat<T> {
        Dat::with_halo_layout(set, dim, name, data, self.config.block_size, 0, layout)
    }

    /// Declares data on a set with `halo_rows` mirror rows appended for
    /// remote-owned elements; `data` holds `(set.size() + halo_rows) * dim`
    /// scalars, owned rows first. Loops iterate the owned prefix only;
    /// halo rows are fed by [`crate::locality::exchange`] and reached
    /// through maps declared with [`Op2::decl_map_halo`]. The physical
    /// layout follows [`Op2Config::layout`]; use
    /// [`Op2::decl_dat_halo_layout`] for a per-dat override.
    pub fn decl_dat_halo<T: OpType>(
        &self,
        set: &Set,
        dim: usize,
        name: &str,
        data: Vec<T>,
        halo_rows: usize,
    ) -> Dat<T> {
        self.decl_dat_halo_layout(set, dim, name, data, halo_rows, self.config.layout)
    }

    /// [`Op2::decl_dat_halo`] with an explicit AoS/SoA [`Layout`] policy.
    /// Under SoA the halo mirror rows extend every component plane, so a
    /// plane's stride is `set.size() + halo_rows` (see
    /// [`Dat::component_stride`]).
    pub fn decl_dat_halo_layout<T: OpType>(
        &self,
        set: &Set,
        dim: usize,
        name: &str,
        data: Vec<T>,
        halo_rows: usize,
        layout: Layout,
    ) -> Dat<T> {
        Dat::with_halo_layout(
            set,
            dim,
            name,
            data,
            self.config.block_size,
            halo_rows,
            layout,
        )
    }

    /// Waits for every outstanding loop (every block node's epoch table
    /// entry is covered: the tracked completion future of a loop joins its
    /// final color round, which transitively joins all earlier rounds),
    /// re-panicking if any kernel panicked — the explicit global
    /// synchronization point (only needed around I/O or timing boundaries
    /// in the dataflow backend).
    pub fn fence(&self) {
        let pending = std::mem::take(&mut *self.outstanding.lock());
        for f in pending {
            f.get();
        }
    }

    pub(crate) fn track(&self, done: SharedFuture<()>) {
        track_in(&self.outstanding, done);
    }

    pub(crate) fn plans(&self) -> &PlanCache {
        &self.plans
    }

    pub(crate) fn specs(&self) -> &crate::driver::SpecCache {
        self.specs.cache()
    }

    pub(crate) fn stats_handle(&self) -> StatsHandle {
        Arc::clone(&self.stats)
    }

    /// Per-loop cumulative statistics, sorted by name.
    pub fn loop_stats(&self) -> Vec<(String, LoopStat)> {
        let mut v: Vec<(String, LoopStat)> = self
            .stats
            .lock()
            .iter()
            .map(|(k, s)| (k.clone(), *s))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// `(plans built, cache hits)` — mirrors OP2's plan reuse counters.
    pub fn plan_cache_stats(&self) -> (usize, u64) {
        (self.plans.built(), self.plans.hits())
    }

    /// `(schedules built, cache hits)` of the loop-spec cache: under the
    /// Dataflow backend the whole block partition + color-round schedule of
    /// a loop is cached per (kernel name, iteration set, argument
    /// signature, chunk policy) — keyed additionally by the *resolved* node
    /// granularity, so repeated solver iterations skip re-planning entirely
    /// while a feedback-driven granularity change re-plans exactly once
    /// (see [`Op2::spec_cache_replans`]). The process-wide totals are
    /// mirrored in the `op2.spec_cache.*` named counters of
    /// [`hpx_rt::stats`].
    pub fn spec_cache_stats(&self) -> (usize, u64) {
        (self.specs.built(), self.specs.hits())
    }

    /// Number of loop-spec cache *re-plans*: a cached schedule was
    /// invalidated and rebuilt because the chunker's resolved granularity
    /// for that loop shape changed. Each granularity change costs exactly
    /// one re-plan; a stable chunker keeps this at 0 after warmup.
    pub fn spec_cache_replans(&self) -> u64 {
        self.specs.replans()
    }

    /// Number of loop-spec cache entries dropped by the LRU residency
    /// bound (`op2.spec_cache.evictions`).
    pub fn spec_cache_evictions(&self) -> u64 {
        self.specs.evictions()
    }

    /// The loop-spec cache handle this world resolves schedules through —
    /// its private cache, or the [`SpecShare`] installed via
    /// [`Op2Config::with_shared_specs`](crate::Op2Config::with_shared_specs).
    pub fn spec_share(&self) -> &SpecShare {
        &self.specs
    }

    /// Retires a set signature after live repartitioning: drops every
    /// cached loop schedule keyed on it (they describe the pre-migration
    /// shard shape and must never be hit again) and forgets its measured
    /// costs so post-migration feedback restarts clean. Returns the
    /// number of schedules dropped.
    pub fn retire_set_signature(&self, sig: u64) -> usize {
        self.feedback.forget_set(sig);
        self.specs.cache().invalidate_set(sig)
    }

    /// The measured per-(kernel, set) cost table adaptive Dataflow
    /// granularity is resolved from — the context's own accumulator, or
    /// the shared [`hpx_rt::PersistentChunker`] table under a
    /// `PersistentAuto` config.
    pub fn granularity_feedback(&self) -> &GranularityFeedback {
        &self.feedback
    }
}

impl std::fmt::Debug for Op2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Op2")
            .field("backend", &self.config.backend)
            .field("threads", &self.config.threads)
            .finish()
    }
}

pub(crate) fn record_loop_time(stats: &StatsHandle, name: &str, elapsed: Duration) {
    let mut map = stats.lock();
    let entry = map.entry(name.to_owned()).or_default();
    entry.invocations += 1;
    entry.total += elapsed;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Op2Config;

    #[test]
    fn declarations() {
        let op2 = Op2::new(Op2Config::seq());
        let nodes = op2.decl_set(3, "nodes");
        let edges = op2.decl_set(2, "edges");
        let m = op2.decl_map(&edges, &nodes, 2, vec![0, 1, 1, 2], "pedge");
        let d = op2.decl_dat(&nodes, 2, "x", vec![0.0f64; 6]);
        assert_eq!(m.dim(), 2);
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn fence_on_empty_context_is_noop() {
        let op2 = Op2::new(Op2Config::fork_join(2));
        op2.fence();
        assert!(op2.loop_stats().is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let stats: StatsHandle = Arc::new(Mutex::new(HashMap::new()));
        record_loop_time(&stats, "k", Duration::from_millis(2));
        record_loop_time(&stats, "k", Duration::from_millis(3));
        let s = stats.lock()["k"];
        assert_eq!(s.invocations, 2);
        assert_eq!(s.total, Duration::from_millis(5));
    }
}
