//! Multi-locality sharding: rank contexts and asynchronous halo exchange
//! over a pluggable [`Transport`].
//!
//! The paper's endgame (§VI: "HPX can run distributed") is OP2 loops over
//! a *partitioned* mesh where halo communication hides behind futures
//! instead of bulk-synchronous MPI exchanges. This module provides the
//! runtime side of that design:
//!
//! * a [`LocalityGroup`] holds one [`Op2`] context per **locally hosted
//!   rank**. Under the default [`InProcessTransport`] all ranks live in
//!   one process and share a single worker pool, so their tasks interleave
//!   like HPX localities on one node; under a [`ProcessTransport`] each OS
//!   process hosts its slice of the ranks and peers exchange real bytes
//!   over Unix-domain sockets.
//! * each sharded dat is declared with [`Op2::decl_dat_halo`]: its owned
//!   rows first, then **halo mirror rows** for the remote-owned elements
//!   its loops reach, grouped contiguously by owner rank.
//! * [`exchange`] refreshes the halo: for every (sender, receiver) pair it
//!   schedules a **send node** (gathers the exported rows once their
//!   writers finish, hands them to the transport) and a **receive node**
//!   (gated on the transport's [`Delivery`], scatters into the halo rows).
//!   Only the halves whose rank is locally hosted are scheduled; the
//!   transport's sequence counters match them with the peer's halves.
//!
//! The crucial property is *what the receive node registers as*: a writer
//! of the halo blocks in the dat's per-block epoch table — exactly like a
//! local loop node. A subsequent `par_loop` whose indirect arguments reach
//! halo blocks therefore gates **only the blocks that touch the halo** on
//! the receive future, through the ordinary block-reach dependency
//! collection; its interior blocks carry no such edge and start
//! immediately. Halo blocks are just remote-fed blocks, and communication
//! overlaps interior compute with no global barrier per loop.
//!
//! # Implicit communication: the dirty-bit protocol
//!
//! OP2's contract is that access descriptors fully describe a loop's data
//! movement — which is what lets the runtime insert communication for the
//! user. [`link_halo`] restores that contract at distributed scale: it
//! ties the per-rank shards of one logical dat into a [`HaloRing`]
//! carrying the [`HaloSpec`] and one **dirty bit per (importer, exporter)
//! pair**. From then on no manual [`exchange`] call is needed; `par_loop`
//! submission drives the state machine:
//!
//! * **Write ⇒ stale.** A loop with a *mutating* argument on a linked dat
//!   (any of `OP_WRITE`/`OP_RW`/`OP_INC`, direct or indirect — the owned
//!   rows are the authoritative copies) marks every export of that rank
//!   stale: `dirty[dst][rank] = true` for each peer `dst` importing from
//!   it. Bits start stale at link time (the peers have never been fed).
//! * **Stale read ⇒ exchange.** A loop submitted later with an argument
//!   that *reads* the dat through a halo-capable map (`OP_READ`/`OP_RW`
//!   indirect via a map with halo targets) checks, per peer, (a) the
//!   dirty bit and (b) whether the map's slot can reach that peer's
//!   import blocks at all (the block-reach tables collapsed over source
//!   blocks, see `Map::touched_target_blocks`). For each stale, reachable
//!   import it schedules exactly the [`exchange_with`] gather/send and
//!   receive/scatter nodes into the dataflow graph — *before* the loop's
//!   own nodes are built, so its boundary blocks gate on the receive
//!   through the ordinary epoch tables while interior blocks start
//!   immediately — and clears the bit.
//! * **Clean read ⇒ skip.** A read of an up-to-date import schedules
//!   nothing (counted in [`HaloStats::skipped_clean`]): redundant
//!   exchanges of a manually scheduled program simply disappear.
//!
//! `OP_INC` deliberately does not trigger a refresh: increments are
//! computed without reading the target, and partition-boundary work is
//! executed redundantly by both ranks (OP2's exec-halo), so increments
//! into halo mirrors are dead values. All receives of one refresh share a
//! writer generation (adjacent peers' import ranges may share a
//! dependency block); a refresh superseding an in-flight older receive
//! chains behind it through the ordinary collect-then-record discipline,
//! so no dependency is lost.
//!
//! ## SPMD symmetry under distributed transports
//!
//! When the transport is not [`Transport::all_local`], every process runs
//! the same program over its own shard (SPMD) and the two endpoints of a
//! pair must *independently* agree, per program point, on whether an
//! exchange fires — that is what keeps the per-`(kind, src → dst)`
//! sequence counters aligned without header negotiation. The protocol
//! therefore tightens in two ways in distributed mode:
//!
//! * a mutation marks the **whole** dirty matrix (every rank executes the
//!   same mutating loop on its shard, so all exports everywhere are stale
//!   — the local process cannot observe remote mutations, it can only
//!   mirror them);
//! * the per-map **reachability cut is disabled** (it depends on the
//!   reading rank's private map contents, which the exporting side cannot
//!   see), and a stale-read refresh on rank `r` both *receives* `r`'s
//!   stale imports and *sends* `r`'s stale exports — the matching halves
//!   fire at the same program point on the peer.
//!
//! # Wire format
//!
//! Transports move rows in one canonical encoding whatever the physical
//! layout (AoS/SoA) on either end:
//!
//! * a [`MsgKind::Halo`] payload is the exported rows in export-list
//!   order, each row `dim` scalars **row-major**, every scalar
//!   little-endian fixed-width (`usize`/`isize` widened to 64 bits,
//!   `bool` one byte — see [`crate::transport::WireScalar`]); this is
//!   exactly what the layout-aware gather produces and the scatter
//!   re-strides.
//! * a [`MsgKind::Reduce`] payload is a `Global`'s `dim` partial values,
//!   same scalar encoding.
//! * multi-process framing (Unix-domain sockets): a 32-byte header
//!   `magic u32 | kind u8 | flags u8 | pad u16 | src u32 | dst u32 |
//!   seq u64 | len u64` (little-endian), then `len` payload bytes; flag
//!   bit 0 marks an **abandoned** exchange (no payload follows).
//!   Messages are matched by `(kind, src, dst, seq)` where `seq` is the
//!   per-`(kind, src → dst)` stream counter of [`Transport::next_seq`].
//!
//! ```
//! use op2_core::locality::{exchange, HaloSpec, LocalityGroup};
//! use op2_core::Op2Config;
//!
//! // Two ranks; rank 0 mirrors rank 1's first two rows.
//! let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
//! let c0 = group.rank(0).decl_set(4, "cells");
//! let c1 = group.rank(1).decl_set(4, "cells");
//! let q0 = group.rank(0).decl_dat_halo(&c0, 1, "q", vec![0.0f64; 6], 2);
//! let q1 = group.rank(1).decl_dat(&c1, 1, "q", vec![7.0, 8.0, 0.0, 0.0]);
//!
//! let mut spec = HaloSpec::empty(2);
//! spec.export_rows[1][0] = vec![0, 1];
//! spec.import_range[0][1] = 4..6;
//! spec.validate().unwrap();
//!
//! let recvs = exchange(&group, &[q0.clone(), q1], &spec);
//! recvs[0][1].wait();
//! assert_eq!(&q0.snapshot()[4..6], &[7.0, 8.0]);
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use hpx_rt::{schedule_after, Runtime, SharedFuture};

use crate::config::Op2Config;
use crate::dat::Dat;
use crate::gbl::{Global, ReducedFuture, Reducible};
use crate::map::Map;
use crate::transport::{
    decode_scalars, encode_scalars, Delivery, InProcessTransport, MsgKind, SendGuard, Transport,
};
use crate::types::{next_loop_gen, OpType};
use crate::world::{CommHooks, Op2};

/// A group of ranks on one runtime, wired to their peers through a
/// [`Transport`] (see module docs). Under the default in-process transport
/// the group hosts *every* rank; under a multi-process transport it hosts
/// the local slice and [`LocalityGroup::rank`] accepts only those ids.
pub struct LocalityGroup {
    /// Contexts of the locally hosted ranks; global id = `first + index`.
    ranks: Vec<Op2>,
    first: usize,
    transport: Arc<dyn Transport>,
}

impl LocalityGroup {
    /// Creates `nranks` contexts with `config` on a shared runtime, all in
    /// this process (an [`InProcessTransport`]).
    pub fn new(config: Op2Config, nranks: usize) -> Self {
        assert!(nranks >= 1, "a locality group needs at least one rank");
        Self::with_transport(config, Arc::new(InProcessTransport::new(nranks)))
    }

    /// Creates one context per *locally hosted* rank of `transport`, all
    /// sharing one runtime. This is the distributed entry point: every
    /// participating process builds its own group over its
    /// [`ProcessTransport`] and runs the same program (SPMD).
    pub fn with_transport(config: Op2Config, transport: Arc<dyn Transport>) -> Self {
        let local = transport.local_ranks();
        assert!(
            !local.is_empty(),
            "a locality group needs at least one rank"
        );
        let rt = Arc::new(Runtime::with_name(config.threads, "op2-locality"));
        // Tag each rank world's feedback with its global rank id: measured
        // kernel time then accumulates per rank — the imbalance signal the
        // live-repartition path reads (a caller-specified tag wins, for
        // tests that want a fixed attribution).
        let ranks = local
            .clone()
            .map(|r| {
                let mut cfg = config.clone();
                if cfg.feedback_rank.is_none() {
                    cfg.feedback_rank = Some(r as u32);
                }
                Op2::with_runtime(cfg, Arc::clone(&rt))
            })
            .collect();
        LocalityGroup {
            ranks,
            first: local.start,
            transport,
        }
    }

    /// Total number of ranks in the job (across all processes).
    pub fn nranks(&self) -> usize {
        self.transport.nranks()
    }

    /// The global ids of the ranks hosted by this group.
    pub fn local_ranks(&self) -> Range<usize> {
        self.first..self.first + self.ranks.len()
    }

    /// The transport moving bytes between ranks.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// The context of one locally hosted rank (global id).
    ///
    /// # Panics
    ///
    /// If rank `r` is not hosted by this process.
    pub fn rank(&self, r: usize) -> &Op2 {
        assert!(
            self.local_ranks().contains(&r),
            "rank {r} is not hosted here (local ranks {:?})",
            self.local_ranks()
        );
        &self.ranks[r - self.first]
    }

    /// All locally hosted rank contexts; index `i` is global rank
    /// `local_ranks().start + i`.
    pub fn ranks(&self) -> &[Op2] {
        &self.ranks
    }

    fn first_local(&self) -> &Op2 {
        &self.ranks[0]
    }

    /// Fences every locally hosted rank — the process-level global
    /// synchronization point.
    pub fn fence(&self) {
        for r in &self.ranks {
            r.fence();
        }
    }

    /// A whole-job rendezvous over the transport: returns once every rank
    /// of the job entered. Immediate for all-local groups.
    pub fn barrier(&self) {
        crate::transport::barrier(&self.transport);
    }

    /// [`link_halo`] as a method: enables implicit, dirty-bit-driven halo
    /// exchange for the per-rank shards of one logical dat.
    pub fn link_halo<T: OpType>(&self, dats: &[Dat<T>], spec: &HaloSpec) {
        link_halo(self, dats, spec);
    }

    /// [`LocalityGroup::allreduce_with`] under default options.
    pub fn allreduce<T: Reducible>(&self, globals: &[Global<T>]) -> ReducedFuture<T> {
        self.allreduce_with(globals, &ExchangeOpts::default())
    }

    /// Schedules an **asynchronous cross-rank allreduce** of the per-rank
    /// globals (`globals[i]` is local rank `local_ranks().start + i`'s
    /// shard of one logical reduction, e.g. the per-rank Airfoil `rms`):
    /// each rank contributes its fully finalized value, and the combined
    /// result becomes a [`ReducedFuture`] — nothing blocks the submitting
    /// thread.
    ///
    /// Per rank one **contribution node** is scheduled, gated on exactly
    /// that rank's outstanding incrementing loops (its `Global` wait-set),
    /// so a rank whose update finished early contributes immediately while
    /// slower ranks are still computing — and the whole reduce overlaps
    /// the next iteration's interior compute instead of draining every
    /// rank's pipeline the way a host-side `get_scalar` sum does.
    ///
    /// All-local groups combine pairwise up a [`hpx_rt::lco::collect`]
    /// tree whose shape is fixed by rank index; `opts.link_delay` defers
    /// each contribution's *delivery* on the shared timer thread (no
    /// runtime worker sleeps). Distributed groups run partial → rank 0 →
    /// combine in the *same tree order* → broadcast over
    /// [`MsgKind::Reduce`] messages, so the floating-point result is
    /// deterministic and transport-independent for a given rank count.
    ///
    /// The nodes are tracked per rank, so [`LocalityGroup::fence`] makes
    /// the future ready.
    ///
    /// # Panics
    ///
    /// If `globals.len()` differs from the number of locally hosted
    /// ranks, or the globals disagree on `dim` or reduction operator.
    pub fn allreduce_with<T: Reducible>(
        &self,
        globals: &[Global<T>],
        opts: &ExchangeOpts,
    ) -> ReducedFuture<T> {
        assert_eq!(
            globals.len(),
            self.ranks.len(),
            "one global shard per locally hosted rank"
        );
        let dim = globals[0].dim();
        let op = globals[0].op();
        for (i, g) in globals.iter().enumerate() {
            let r = self.first + i;
            assert_eq!(g.dim(), dim, "rank {r}: allreduce dim mismatch");
            assert_eq!(g.op(), op, "rank {r}: allreduce operator mismatch");
        }
        hpx_rt::static_counter!("op2.reduce.allreduces").fetch_add(1, Ordering::Relaxed);
        hpx_rt::static_counter!("op2.reduce.contributions")
            .fetch_add(globals.len() as u64, Ordering::Relaxed);
        if self.transport.all_local() {
            self.allreduce_local(globals, opts)
        } else {
            self.allreduce_distributed(globals, opts)
        }
    }

    /// All ranks in-process: one collect-tree LCO, contributions fulfilled
    /// directly (deferred on the timer thread under an injected delay —
    /// the pre-PR 7 implementation slept on a runtime worker instead).
    fn allreduce_local<T: Reducible>(
        &self,
        globals: &[Global<T>],
        opts: &ExchangeOpts,
    ) -> ReducedFuture<T> {
        let n = self.ranks.len();
        let op = globals[0].op();
        let (contribs, value) = hpx_rt::lco::collect(n, move |a: Vec<T>, b: Vec<T>| {
            hpx_rt::static_counter!("op2.reduce.combines").fetch_add(1, Ordering::Relaxed);
            a.iter()
                .zip(b)
                .map(|(&x, y)| T::combine(op, x, y))
                .collect()
        });
        let delay = opts.link_delay;
        let rt = self.first_local().runtime_arc();
        let mut nodes: Vec<SharedFuture<()>> = Vec::with_capacity(n + 1);
        for (i, c) in contribs.into_iter().enumerate() {
            let hooks = self.ranks[i].comm_hooks();
            let deps = globals[i].pending_snapshot();
            let gbl = globals[i].clone();
            let node = schedule_after(hooks.runtime(), &deps, move || {
                let v = gbl.value_snapshot();
                match delay {
                    // Model link latency by *rescheduling* the delivery on
                    // the shared timer thread; the worker that ran this
                    // node is immediately free to execute overlap compute.
                    Some(d) => hpx_rt::timing::defer(d, move || c.set(v)),
                    None => c.set(v),
                }
            });
            // The contribution node joins the rank-global's wait-set so a
            // subsequent reset/set/incrementing loop on it orders after
            // this read (same discipline as `Global::reduce_on`).
            globals[i].record_completion(&node);
            hooks.track(node.clone());
            nodes.push(node);
        }
        // Join node: with deferred contributions a node's completion no
        // longer implies its value was set, so `done` additionally gates
        // on the collect result itself — preserving the ReducedFuture
        // invariant (done ⊇ value ready). A broken collective (skipped
        // contribution) panics `value`, which propagates here instead of
        // hanging.
        nodes.push(value.then(&rt, |_| ()).share());
        let done = schedule_after(&rt, &nodes, || ());
        let hooks0 = self.first_local().comm_hooks();
        hooks0.track(done.clone());
        ReducedFuture::from_parts(value, done, rt, hooks0)
    }

    /// Distributed: every rank sends its partial to rank 0 over the
    /// transport; rank 0 combines **in collect-tree order** (identical
    /// floating-point result to the all-local tree) and broadcasts the
    /// total back.
    fn allreduce_distributed<T: Reducible>(
        &self,
        globals: &[Global<T>],
        opts: &ExchangeOpts,
    ) -> ReducedFuture<T> {
        let n = self.nranks();
        let op = globals[0].op();
        let delay = opts.link_delay;
        let transport = Arc::clone(&self.transport);
        let rt = self.first_local().runtime_arc();
        // `value` is fulfilled exactly once per process: by rank 0's
        // combine node if hosted here, else by the first local rank's
        // broadcast-receive node.
        let (mut contrib, value) = hpx_rt::lco::collect(1, |a: Vec<T>, _| a);
        let mut nodes: Vec<SharedFuture<()>> = Vec::new();

        for (i, gbl) in globals.iter().enumerate() {
            let r = self.first + i;
            let hooks = self.ranks[i].comm_hooks();
            if r == 0 {
                // Star root: gate on rank 0's own wait-set plus every
                // other rank's partial; combine; broadcast.
                let ups: Vec<(usize, Delivery)> = (1..n)
                    .map(|s| {
                        let seq = transport.next_seq(MsgKind::Reduce, s, 0);
                        (s, transport.recv(MsgKind::Reduce, s, 0, seq))
                    })
                    .collect();
                let down_seqs: Vec<u64> = (1..n)
                    .map(|s| transport.next_seq(MsgKind::Reduce, 0, s))
                    .collect();
                let mut deps = gbl.pending_snapshot();
                for (_, d) in &ups {
                    deps.push(d.ready().clone());
                }
                let g0 = gbl.clone();
                let t2 = Arc::clone(&transport);
                let c = contrib.pop().expect("collect(1) yields one contribution");
                let node = schedule_after(hooks.runtime(), &deps, move || {
                    let mut parts: Vec<Vec<T>> = Vec::with_capacity(n);
                    parts.push(g0.value_snapshot());
                    for (s, d) in &ups {
                        let bytes = d.take().unwrap_or_else(|| {
                            panic!("allreduce: contribution from rank {s} was abandoned")
                        });
                        parts.push(decode_scalars(&bytes));
                    }
                    let total = tree_combine(parts, op);
                    let bytes = encode_scalars(&total);
                    for (k, s) in (1..n).enumerate() {
                        t2.send(MsgKind::Reduce, 0, s, down_seqs[k], delay, bytes.clone());
                    }
                    c.set(total);
                });
                gbl.record_completion(&node);
                hooks.track(node.clone());
                nodes.push(node);
            } else {
                // Leaf: send the partial up once the wait-set drains
                // (under a SendGuard so a skipped node abandons instead of
                // stranding rank 0), then receive the broadcast total.
                let seq_up = transport.next_seq(MsgKind::Reduce, r, 0);
                let guard = SendGuard::new(Arc::clone(&transport), MsgKind::Reduce, r, 0, seq_up);
                let deps = gbl.pending_snapshot();
                let g = gbl.clone();
                let node = schedule_after(hooks.runtime(), &deps, move || {
                    guard.send(delay, encode_scalars(&g.value_snapshot()));
                });
                gbl.record_completion(&node);
                hooks.track(node.clone());
                nodes.push(node);

                let seq_down = transport.next_seq(MsgKind::Reduce, 0, r);
                let d = transport.recv(MsgKind::Reduce, 0, r, seq_down);
                let down_deps = [d.ready().clone()];
                let c = contrib.pop();
                let result = schedule_after(hooks.runtime(), &down_deps, move || {
                    let bytes = d
                        .take()
                        .unwrap_or_else(|| panic!("allreduce: total from rank 0 was abandoned"));
                    let total: Vec<T> = decode_scalars(&bytes);
                    if let Some(c) = c {
                        c.set(total);
                    }
                });
                hooks.track(result.clone());
                nodes.push(result);
            }
        }
        // `value` is set inside one of the nodes above, so gating `done`
        // on all of them preserves the ReducedFuture invariant.
        let done = schedule_after(&rt, &nodes, || ());
        let hooks0 = self.first_local().comm_hooks();
        hooks0.track(done.clone());
        ReducedFuture::from_parts(value, done, rt, hooks0)
    }
}

/// Combines per-rank partials in the exact order of the
/// [`hpx_rt::lco::collect`] pairwise tree (slot `i` joins `i ^ 1`, an
/// unpaired trailing slot passes through), so the distributed star
/// reproduces the all-local tree's floating-point result bit for bit.
fn tree_combine<T: Reducible>(mut level: Vec<Vec<T>>, op: crate::gbl::ReduceOp) -> Vec<T> {
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => {
                    hpx_rt::static_counter!("op2.reduce.combines").fetch_add(1, Ordering::Relaxed);
                    next.push(
                        a.iter()
                            .zip(b)
                            .map(|(&x, y)| T::combine(op, x, y))
                            .collect(),
                    );
                }
                None => next.push(a),
            }
        }
        level = next;
    }
    level.pop().expect("tree_combine of at least one partial")
}

impl<T: Reducible> Global<T> {
    /// Asynchronous read of a **group-shared** global: one `Global` cloned
    /// into incrementing loops on several ranks of `group` (legal now that
    /// the wait-set tracks every outstanding loop) is snapshotted by a
    /// single node gated on the *whole* wait-set — the cross-rank sum
    /// already lives in the shared accumulator, so no tree is needed; the
    /// surface just turns the read into a [`ReducedFuture`] like
    /// [`LocalityGroup::allreduce`] does for per-rank shards. (Sharing an
    /// accumulator requires shared memory: all-local groups only.)
    pub fn reduce_across(&self, group: &LocalityGroup) -> ReducedFuture<T> {
        let r0 = group.first_local();
        self.reduce_on(r0.runtime_arc(), r0.comm_hooks())
    }
}

impl std::fmt::Debug for LocalityGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalityGroup")
            .field("nranks", &self.nranks())
            .field("local_ranks", &self.local_ranks())
            .finish()
    }
}

/// Who sends which local rows to whom, and where received rows land — the
/// runtime-level mirror of the partitioner's import/export lists, in each
/// rank's *local* row numbering.
///
/// `export_rows[r][s]` lists the owned local rows rank `r` gathers and
/// sends to rank `s`; `import_range[s][r]` is the contiguous halo row
/// range on rank `s` those values land in, in the same order. Halo rows
/// are contiguous per peer because the shard builders group imports by
/// owner rank. The spec is *global*: every process carries all ranks'
/// rows, which is what lets SPMD processes agree on traffic without
/// negotiation.
#[derive(Debug, Clone, Default)]
pub struct HaloSpec {
    /// Number of ranks.
    pub nranks: usize,
    /// `export_rows[r][s]`: local rows on rank `r` sent to rank `s`.
    pub export_rows: Vec<Vec<Vec<u32>>>,
    /// `import_range[r][s]`: local halo rows on rank `r` fed by rank `s`.
    pub import_range: Vec<Vec<Range<usize>>>,
}

impl HaloSpec {
    /// A spec with no traffic between `nranks` ranks.
    pub fn empty(nranks: usize) -> Self {
        HaloSpec {
            nranks,
            export_rows: vec![vec![Vec::new(); nranks]; nranks],
            import_range: vec![vec![0..0; nranks]; nranks],
        }
    }

    /// Checks shape and pairwise symmetry: `export_rows[r][s]` must be as
    /// long as `import_range[s][r]`, and the diagonal must be empty.
    pub fn validate(&self) -> Result<(), String> {
        if self.export_rows.len() != self.nranks || self.import_range.len() != self.nranks {
            return Err("spec shape does not match nranks".into());
        }
        for r in 0..self.nranks {
            if self.export_rows[r].len() != self.nranks || self.import_range[r].len() != self.nranks
            {
                return Err(format!("rank {r}: spec row shape does not match nranks"));
            }
            if !self.export_rows[r][r].is_empty() || !self.import_range[r][r].is_empty() {
                return Err(format!("rank {r}: non-empty self exchange"));
            }
            for s in 0..self.nranks {
                let sent = self.export_rows[r][s].len();
                let landed = self.import_range[s][r].len();
                if sent != landed {
                    return Err(format!(
                        "ranks {r}->{s}: {sent} rows exported but {landed} halo rows imported"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Tuning knobs for [`exchange_with`].
#[derive(Debug, Clone, Default)]
pub struct ExchangeOpts {
    /// Artificial per-message latency injected between gather and
    /// delivery — models interconnect latency so overlap benchmarks and
    /// tests can measure how much of it interior compute hides. The
    /// in-process transport implements it by *deferred delivery* on the
    /// shared timer thread (no runtime worker blocks); transports with
    /// real wire latency ignore it. `None` (the default) delivers
    /// immediately.
    pub link_delay: Option<Duration>,
}

/// [`exchange_with`] under default options.
pub fn exchange<T: OpType>(
    group: &LocalityGroup,
    dats: &[Dat<T>],
    spec: &HaloSpec,
) -> Vec<Vec<SharedFuture<()>>> {
    exchange_with(group, dats, spec, &ExchangeOpts::default())
}

/// Schedules one asynchronous halo refresh of `dats` (one per *locally
/// hosted* rank, all shards of the same logical dat) according to `spec`,
/// returning the receive-completion futures: `result[i][s]` completes when
/// local rank `local_ranks().start + i`'s halo rows from global rank `s`
/// are in place (already-ready for pairs with no traffic).
///
/// Nothing blocks: per nonempty pair this schedules a gather/send node
/// (after the exported rows' pending writers; registered as a *reader* of
/// those blocks so later writers wait for the send) and a receive/scatter
/// node (after the halo rows' pending readers and writers; registered as
/// a *writer* of the halo blocks, which is what gates exactly the
/// boundary blocks of subsequent consumer loops). Values travel through
/// the group's [`Transport`]; under a distributed transport only the
/// locally hosted halves are scheduled here, matched with the peer's
/// halves by sequence number (every process must call `exchange_with` at
/// the same program point — SPMD).
///
/// The receive node is gated on the transport [`Delivery`] and *takes* the
/// payload non-blockingly. This keeps every node *reactive*: a task that
/// blocked mid-body on a receive would pin its stack frame while
/// help-first execution nests other tasks above it, and a nested task
/// whose sender transitively waits on the pinned node completing
/// deadlocks the pool (observed with ≥ 3 ranks exchanging through one
/// worker group). An abandoned exchange (sender panicked upstream)
/// completes the delivery with no payload and the receive degrades to a
/// diagnostic no-op — the original panic is what reaches the fence.
pub fn exchange_with<T: OpType>(
    group: &LocalityGroup,
    dats: &[Dat<T>],
    spec: &HaloSpec,
    opts: &ExchangeOpts,
) -> Vec<Vec<SharedFuture<()>>> {
    let n = spec.nranks;
    assert_eq!(group.nranks(), n, "spec rank count matches the group");
    let local = group.local_ranks();
    let first = local.start;
    assert_eq!(dats.len(), local.len(), "one dat shard per local rank");
    let transport = group.transport();
    // All receive nodes of this exchange form one writer generation, like
    // the many nodes of one scattering loop: two peers' halo ranges may
    // share a dependency block, and distinct generations would supersede
    // each other's writer entry (a lost dependency). Sends get their own
    // generation (readers ignore it).
    let send_gen = next_loop_gen();
    let recv_gen = next_loop_gen();
    let mut recvs: Vec<Vec<SharedFuture<()>>> = (0..local.len())
        .map(|_| vec![SharedFuture::ready(()); n])
        .collect();

    // Every send half is scheduled before ANY receive half. A receive
    // registers as a *writer* of the halo blocks; when a dat's halo rows
    // share a dependency block with its exported owned rows (small shards),
    // a send gather scheduled after a receive would wait on it — and with
    // two SPMD schedulers doing this symmetrically, each rank's send waits
    // its own receive while each receive waits the peer's send: deadlock.
    // Sends-first gives exchange nodes a rank-agnostic topological level
    // (sends below receives within one event), keeping the cross-rank wait
    // graph acyclic.
    let mut pending_recvs: Vec<(usize, usize, Range<usize>, u64)> = Vec::new();
    for src in 0..n {
        for dst in 0..n {
            let rows = &spec.export_rows[src][dst];
            if src == dst || rows.is_empty() {
                continue;
            }
            let src_local = local.contains(&src);
            let dst_local = local.contains(&dst);
            if !src_local && !dst_local {
                continue;
            }
            let range = spec.import_range[dst][src].clone();
            assert_eq!(
                rows.len(),
                range.len(),
                "halo spec {src}->{dst}: export/import length mismatch"
            );
            let seq = transport.next_seq(MsgKind::Halo, src, dst);
            if src_local {
                let _send = schedule_send_half(
                    MsgKind::Halo,
                    src,
                    dst,
                    &group.ranks[src - first].comm_hooks(),
                    &dats[src - first],
                    rows,
                    send_gen,
                    seq,
                    transport,
                    opts,
                );
            }
            if dst_local {
                pending_recvs.push((src, dst, range, seq));
            }
        }
    }
    for (src, dst, range, seq) in pending_recvs {
        recvs[dst - first][src] = schedule_recv_half(
            src,
            dst,
            &group.ranks[dst - first].comm_hooks(),
            &dats[dst - first],
            range,
            recv_gen,
            seq,
            transport,
        );
    }
    recvs
}

/// Schedules the send half of one (src → dst) exchange on the locally
/// hosted `src`: a gather node after the exported rows' pending writers,
/// handing the canonical row-major payload to the transport under a
/// [`SendGuard`] (a skipped or panicking node abandons the exchange so the
/// receiver never hangs).
#[allow(clippy::too_many_arguments)]
pub(crate) fn schedule_send_half<T: OpType>(
    kind: MsgKind,
    src: usize,
    dst: usize,
    src_hooks: &CommHooks,
    dat_src: &Dat<T>,
    rows: &[u32],
    send_gen: u64,
    seq: u64,
    transport: &Arc<dyn Transport>,
    opts: &ExchangeOpts,
) -> SharedFuture<()> {
    assert!(
        rows.iter().all(|&r| (r as usize) < dat_src.set().size()),
        "halo spec {src}->{dst}: export rows must be owned rows of dat '{}' \
         (halo mirror rows hold possibly-stale copies and are never authoritative)",
        dat_src.name()
    );
    let bsz = dat_src.dep_block_size().max(1);
    let mut blocks: Vec<usize> = rows.iter().map(|&r| r as usize / bsz).collect();
    blocks.sort_unstable();
    blocks.dedup();
    let mut deps: Vec<SharedFuture<()>> = Vec::new();
    for &b in &blocks {
        dat_src.deps().collect_block(b, false, &mut deps);
    }
    let gather_rows: Arc<[u32]> = Arc::from(rows);
    let gather_dat = dat_src.clone();
    let delay = opts.link_delay;
    let guard = SendGuard::new(Arc::clone(transport), kind, src, dst, seq);
    let send_done = schedule_after(src_hooks.runtime(), &deps, move || {
        let dim = gather_dat.dim();
        let mut vals = Vec::with_capacity(gather_rows.len() * dim);
        for &row in gather_rows.iter() {
            // SAFETY: this node was scheduled after every pending
            // writer of the gathered blocks and is registered as a
            // reader, so the rows are stable while it runs. The
            // layout-aware gather keeps the wire format canonical
            // (row-major) whatever the dat's physical layout.
            unsafe {
                gather_dat.append_row_to(row as usize, &mut vals);
            }
        }
        guard.send(delay, encode_scalars(&vals));
    });
    for &b in &blocks {
        dat_src.deps().record_block(b, false, send_gen, &send_done);
    }
    src_hooks.track(send_done.clone());
    send_done
}

/// Schedules the receive half of one (src → dst) exchange on the locally
/// hosted `dst`: a scatter node gated on the transport [`Delivery`] (plus
/// the halo rows' pending readers/writers), registered as the halo
/// blocks' writer. An abandoned exchange degrades to a diagnostic no-op.
#[allow(clippy::too_many_arguments)]
fn schedule_recv_half<T: OpType>(
    src: usize,
    dst: usize,
    dst_hooks: &CommHooks,
    dat_dst: &Dat<T>,
    range: Range<usize>,
    recv_gen: u64,
    seq: u64,
    transport: &Arc<dyn Transport>,
) -> SharedFuture<()> {
    assert!(
        range.end <= dat_dst.total_rows() && range.start >= dat_dst.set().size(),
        "halo spec {src}->{dst}: import range {range:?} outside the halo region of dat '{}'",
        dat_dst.name()
    );
    let delivery = transport.recv(MsgKind::Halo, src, dst, seq);
    let mut deps: Vec<SharedFuture<()>> = Vec::new();
    dat_dst.deps().collect_rows(&range, true, &mut deps);
    deps.push(delivery.ready().clone());
    let scatter_dat = dat_dst.clone();
    let scatter_range = range.clone();
    let recv_done = schedule_after(dst_hooks.runtime(), &deps, move || {
        let dim = scatter_dat.dim();
        match delivery.take() {
            Some(bytes) => {
                let vals: Vec<T> = decode_scalars(&bytes);
                assert_eq!(vals.len(), scatter_range.len() * dim, "halo payload size");
                // SAFETY: scheduled after every pending reader and writer
                // of the halo blocks, and registered as their writer, so
                // this node has exclusive access to the rows. The payload
                // is canonical row-major; the scatter re-strides it into
                // the dat's physical layout.
                unsafe {
                    scatter_dat.scatter_rows_from(scatter_range.start, &vals);
                }
            }
            None => {
                // The sender abandoned the exchange (its gather was
                // skipped by an upstream panic, or the peer died). Leave
                // the mirror rows stale and let the *original* failure
                // propagate through the sender's fence — panicking here
                // would bury it under a secondary error.
                hpx_rt::static_counter!("op2.transport.recvs_abandoned")
                    .fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "op2-halo: exchange {src}->{dst} abandoned by the sender; \
                     halo rows {scatter_range:?} of '{}' left stale",
                    scatter_dat.name()
                );
            }
        }
    });
    dat_dst
        .deps()
        .record_rows(&range, true, recv_gen, &recv_done);
    dst_hooks.track(recv_done.clone());
    recv_done
}

// ---------------------------------------------------------------------------
// Implicit communication: dirty-bit halo rings
// ---------------------------------------------------------------------------

/// Counters of one halo ring's implicit-communication activity (see
/// [`implicit_halo_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HaloStats {
    /// (src → dst) pair exchanges actually scheduled (a distributed
    /// process counts the pairs it scheduled at least one half of).
    pub pair_exchanges: u64,
    /// Loop submissions that checked this ring for stale imports.
    pub refresh_calls: u64,
    /// Per-pair checks that found the import clean and scheduled nothing —
    /// the exchanges a manual schedule would have issued redundantly.
    pub skipped_clean: u64,
}

/// The shared state tying the per-rank shards of one logical dat together
/// for implicit communication: halo spec, per-peer dirty bits, the
/// scheduling hooks of every locally hosted rank, and the transport (see
/// the module-level dirty-bit protocol). Created by [`link_halo`]; not
/// user-visible beyond [`HaloStats`].
pub(crate) struct HaloRing<T> {
    spec: HaloSpec,
    opts: ExchangeOpts,
    /// Weak so ring ↔ dat references cannot leak the payloads; a shard
    /// must outlive the ring's use, which the owning program guarantees by
    /// holding the `Dat` handles it loops over. Indexed by local rank.
    shards: Vec<std::sync::Weak<crate::dat::DatInner<T>>>,
    /// Indexed by local rank.
    hooks: Vec<CommHooks>,
    /// Global id of local rank 0.
    first: usize,
    transport: Arc<dyn Transport>,
    /// `dirty[dst * nranks + src]`: rank `dst`'s import from `src` is
    /// stale.
    dirty: Mutex<Vec<bool>>,
    pair_exchanges: AtomicU64,
    refresh_calls: AtomicU64,
    skipped_clean: AtomicU64,
}

impl<T: OpType> HaloRing<T> {
    fn shard(&self, rank: usize) -> Dat<T> {
        self.shards[rank - self.first]
            .upgrade()
            .map(Dat::from_inner)
            .unwrap_or_else(|| {
                panic!("halo ring: rank {rank}'s dat shard was dropped while the ring is in use")
            })
    }

    fn local_ranks(&self) -> Range<usize> {
        self.first..self.first + self.shards.len()
    }

    /// True when scheduling decisions must be made SPMD-symmetrically
    /// (distributed transport; see module docs).
    pub(crate) fn spmd_mode(&self) -> bool {
        !self.transport.all_local()
    }

    /// A mutating loop argument on rank `src`'s shard: every peer
    /// importing from `src` now holds a stale mirror. In SPMD mode the
    /// *whole* matrix is marked — every rank runs this same mutating loop
    /// on its own shard, and remote mutations are mirrored, not observed.
    pub(crate) fn mark_exports_dirty(&self, src: usize) {
        let n = self.spec.nranks;
        let mut dirty = self.dirty.lock();
        if self.spmd_mode() {
            for s in 0..n {
                for dst in 0..n {
                    if dst != s && !self.spec.export_rows[s][dst].is_empty() {
                        dirty[dst * n + s] = true;
                    }
                }
            }
        } else {
            for dst in 0..n {
                if dst != src && !self.spec.export_rows[src][dst].is_empty() {
                    dirty[dst * n + src] = true;
                }
            }
        }
    }

    /// A reading loop argument on rank `dst`'s shard, indirect through
    /// `map` slot `slot`: schedule the exchange for every stale import the
    /// map can actually observe, then clear those bits. All receives of
    /// one refresh share a writer generation, exactly like one
    /// [`exchange_with`] call.
    ///
    /// In SPMD mode the reachability cut is disabled (the peer cannot see
    /// this rank's map) and the refresh additionally *sends* rank `dst`'s
    /// stale exports to remote importers — the peer's matching refresh,
    /// at the same program point, posts the receive.
    pub(crate) fn refresh_for_read(&self, dst: usize, map: &Map, slot: usize) {
        self.refresh_calls.fetch_add(1, Ordering::Relaxed);
        let n = self.spec.nranks;
        let spmd = self.spmd_mode();
        let local = self.local_ranks();
        let dat_dst = self.shard(dst);
        let to_bs = dat_dst.dep_block_size().max(1);
        let mut gens: Option<(u64, u64)> = None;
        // Receive halves are deferred below every send half of this
        // refresh: a receive registers as a halo-block *writer*, and a
        // send gather scheduled after it on a shared block would wait on
        // it — symmetric SPMD schedulers then deadlock pairwise (see
        // [`exchange_with`]). `(src, range, seq, recv_gen)`.
        let mut pending_recvs: Vec<(usize, Range<usize>, u64, u64)> = Vec::new();
        let mut dirty = self.dirty.lock();
        // --- Rank `dst`'s stale imports: receive (and send, if the
        // exporter is hosted here too).
        for src in 0..n {
            if src == dst {
                continue;
            }
            let range = self.spec.import_range[dst][src].clone();
            if range.is_empty() {
                continue;
            }
            if !dirty[dst * n + src] {
                self.skipped_clean.fetch_add(1, Ordering::Relaxed);
                hpx_rt::static_counter!("op2.halo.refresh_skipped").fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Leave the bit set when this map cannot observe the import at
            // all — a later loop through a reaching map still needs it.
            // (All-local only: the cut depends on this rank's private map,
            // which the SPMD peer cannot replicate.)
            if !spmd {
                let block_range = range.start / to_bs..(range.end - 1) / to_bs + 1;
                if !map.reaches_target_blocks(slot, to_bs, block_range) {
                    continue;
                }
            }
            let (send_gen, recv_gen) =
                *gens.get_or_insert_with(|| (next_loop_gen(), next_loop_gen()));
            let seq = self.transport.next_seq(MsgKind::Halo, src, dst);
            if local.contains(&src) {
                let dat_src = self.shard(src);
                let _send = schedule_send_half(
                    MsgKind::Halo,
                    src,
                    dst,
                    &self.hooks[src - self.first],
                    &dat_src,
                    &self.spec.export_rows[src][dst],
                    send_gen,
                    seq,
                    &self.transport,
                    &self.opts,
                );
            }
            pending_recvs.push((src, range, seq, recv_gen));
            dirty[dst * n + src] = false;
            self.pair_exchanges.fetch_add(1, Ordering::Relaxed);
            hpx_rt::static_counter!("op2.halo.pairs_fired").fetch_add(1, Ordering::Relaxed);
        }
        // --- SPMD only: rank `dst`'s stale exports to *remote* importers.
        // The importer's own refresh, running at this same program point in
        // its process, posts the matching receive and clears the same bit.
        if spmd {
            for imp in 0..n {
                if imp == dst
                    || local.contains(&imp)
                    || self.spec.export_rows[dst][imp].is_empty()
                    || !dirty[imp * n + dst]
                {
                    continue;
                }
                let (send_gen, _) = *gens.get_or_insert_with(|| (next_loop_gen(), next_loop_gen()));
                let seq = self.transport.next_seq(MsgKind::Halo, dst, imp);
                let _send = schedule_send_half(
                    MsgKind::Halo,
                    dst,
                    imp,
                    &self.hooks[dst - self.first],
                    &dat_dst,
                    &self.spec.export_rows[dst][imp],
                    send_gen,
                    seq,
                    &self.transport,
                    &self.opts,
                );
                dirty[imp * n + dst] = false;
                self.pair_exchanges.fetch_add(1, Ordering::Relaxed);
                hpx_rt::static_counter!("op2.halo.pairs_fired").fetch_add(1, Ordering::Relaxed);
            }
        }
        // --- The deferred receives, after every send half. They are not
        // waited on here: each is registered as a writer of its halo
        // blocks, so the submitting loop's boundary blocks (and any rank
        // fence) chain behind it.
        for (src, range, seq, recv_gen) in pending_recvs {
            let _recv = schedule_recv_half(
                src,
                dst,
                &self.hooks[dst - self.first],
                &dat_dst,
                range,
                recv_gen,
                seq,
                &self.transport,
            );
        }
    }

    fn stats(&self) -> HaloStats {
        HaloStats {
            pair_exchanges: self.pair_exchanges.load(Ordering::Relaxed),
            refresh_calls: self.refresh_calls.load(Ordering::Relaxed),
            skipped_clean: self.skipped_clean.load(Ordering::Relaxed),
        }
    }
}

/// [`link_halo_with`] under default exchange options.
pub fn link_halo<T: OpType>(group: &LocalityGroup, dats: &[Dat<T>], spec: &HaloSpec) {
    link_halo_with(group, dats, spec, &ExchangeOpts::default());
}

/// Ties the per-rank shards of one logical dat into a [`HaloRing`] so all
/// halo communication becomes **implicit**: loops that mutate a shard mark
/// its exports stale, loops that read stale imports through a halo-capable
/// map schedule the exchange automatically (see the module-level dirty-bit
/// protocol). Every import starts stale, so the first reader is fed
/// unconditionally.
///
/// `dats[i]` must be local rank `local_ranks().start + i`'s shard
/// (declared with [`crate::Op2::decl_dat_halo`] on the matching
/// [`LocalityGroup::rank`]), and each shard can belong to at most one
/// ring. The spec is global; under a distributed transport every process
/// links with the same spec.
pub fn link_halo_with<T: OpType>(
    group: &LocalityGroup,
    dats: &[Dat<T>],
    spec: &HaloSpec,
    opts: &ExchangeOpts,
) {
    let n = spec.nranks;
    assert_eq!(group.nranks(), n, "spec rank count matches the group");
    let local = group.local_ranks();
    assert_eq!(dats.len(), local.len(), "one dat shard per local rank");
    spec.validate().expect("halo spec invalid");
    for (i, d) in dats.iter().enumerate() {
        let r = local.start + i;
        for s in 0..n {
            let range = &spec.import_range[r][s];
            assert!(
                range.is_empty() || (range.start >= d.set().size() && range.end <= d.total_rows()),
                "link_halo: rank {r} import range {range:?} outside the halo region of dat '{}'",
                d.name()
            );
        }
    }
    let mut dirty = vec![false; n * n];
    for dst in 0..n {
        for src in 0..n {
            dirty[dst * n + src] = dst != src && !spec.import_range[dst][src].is_empty();
        }
    }
    let ring = Arc::new(HaloRing {
        spec: spec.clone(),
        opts: opts.clone(),
        shards: dats.iter().map(Dat::inner_weak).collect(),
        hooks: group.ranks().iter().map(Op2::comm_hooks).collect(),
        first: local.start,
        transport: Arc::clone(group.transport()),
        dirty: Mutex::new(dirty),
        pair_exchanges: AtomicU64::new(0),
        refresh_calls: AtomicU64::new(0),
        skipped_clean: AtomicU64::new(0),
    });
    for (i, d) in dats.iter().enumerate() {
        d.attach_halo_ring(local.start + i, Arc::clone(&ring));
    }
}

/// The implicit-communication counters of the ring `dat` belongs to
/// (`None` for unlinked dats). Every shard of a ring reports the same,
/// ring-wide numbers.
pub fn implicit_halo_stats<T: OpType>(dat: &Dat<T>) -> Option<HaloStats> {
    dat.halo_ring().map(|(_, ring)| ring.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arg::{arg_read_via, arg_write};
    use crate::transport::ProcessTransport;

    fn two_rank_spec(halo: usize, owned: usize) -> HaloSpec {
        let mut spec = HaloSpec::empty(2);
        spec.export_rows[1][0] = (0..halo as u32).collect();
        spec.import_range[0][1] = owned..owned + halo;
        spec
    }

    #[test]
    fn values_cross_ranks() {
        let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
        let c0 = group.rank(0).decl_set(8, "cells");
        let c1 = group.rank(1).decl_set(4, "cells");
        let q0 = group
            .rank(0)
            .decl_dat_halo(&c0, 2, "q", vec![0.0f64; 24], 4);
        let q1 = group
            .rank(1)
            .decl_dat(&c1, 2, "q", (0..8).map(|i| i as f64).collect());
        let spec = two_rank_spec(4, 8);
        spec.validate().unwrap();
        let recvs = exchange(&group, &[q0.clone(), q1], &spec);
        recvs[0][1].wait();
        assert!(recvs[0][0].is_ready(), "no-traffic pairs are ready");
        let snap = q0.snapshot();
        assert_eq!(
            &snap[16..24],
            &(0..8).map(|i| i as f64).collect::<Vec<_>>()[..]
        );
        assert!(snap[..16].iter().all(|&v| v == 0.0), "owned rows untouched");
    }

    #[test]
    fn exchange_waits_for_pending_writer_of_exported_rows() {
        let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
        let c0 = group.rank(0).decl_set(4, "cells");
        let c1 = group.rank(1).decl_set(4, "cells");
        let q0 = group.rank(0).decl_dat_halo(&c0, 1, "q", vec![0.0f64; 8], 4);
        let q1 = group.rank(1).decl_dat(&c1, 1, "q", vec![0.0f64; 4]);
        // The writer is still pending when the exchange is scheduled.
        group
            .rank(1)
            .loop_("w", &c1)
            .arg(arg_write(&q1))
            .run(|q: &mut [f64]| {
                q[0] = 9.0;
            });
        let spec = two_rank_spec(4, 4);
        let recvs = exchange(&group, &[q0.clone(), q1], &spec);
        recvs[0][1].wait();
        assert_eq!(&q0.snapshot()[4..8], &[9.0; 4]);
    }

    #[test]
    fn consumer_loop_after_exchange_reads_fresh_halo() {
        let group = LocalityGroup::new(Op2Config::dataflow(2).with_block_size(2), 2);
        let c0 = group.rank(0).decl_set(4, "cells");
        let c1 = group.rank(1).decl_set(2, "cells");
        let q0 = group.rank(0).decl_dat_halo(&c0, 1, "q", vec![1.0f64; 6], 2);
        let q1 = group.rank(1).decl_dat(&c1, 1, "q", vec![5.0f64, 6.0]);
        let spec = two_rank_spec(2, 4);
        exchange(&group, &[q0.clone(), q1], &spec);
        // Gather through a map that reaches the halo rows.
        let edges = group.rank(0).decl_set(6, "edges");
        let m = group
            .rank(0)
            .decl_map_halo(&edges, &c0, 1, (0..6).collect(), "ident", 2);
        let out = group.rank(0).decl_dat(&edges, 1, "out", vec![0.0f64; 6]);
        let h = group
            .rank(0)
            .loop_("gather", &edges)
            .arg(arg_read_via(&q0, &m, 0))
            .arg(arg_write(&out))
            .run(|q: &[f64], o: &mut [f64]| o[0] = q[0]);
        h.wait();
        assert_eq!(out.snapshot(), vec![1.0, 1.0, 1.0, 1.0, 5.0, 6.0]);
    }

    #[test]
    fn spec_validation_catches_asymmetry() {
        let mut spec = HaloSpec::empty(2);
        spec.export_rows[1][0] = vec![0, 1];
        spec.import_range[0][1] = 4..5; // one row short
        assert!(spec.validate().is_err());
        spec.import_range[0][1] = 4..6;
        assert!(spec.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "outside the halo region")]
    fn import_range_must_lie_in_the_halo() {
        let group = LocalityGroup::new(Op2Config::dataflow(1), 2);
        let c0 = group.rank(0).decl_set(4, "cells");
        let c1 = group.rank(1).decl_set(4, "cells");
        let q0 = group.rank(0).decl_dat_halo(&c0, 1, "q", vec![0.0f64; 8], 4);
        let q1 = group.rank(1).decl_dat(&c1, 1, "q", vec![0.0f64; 4]);
        let mut spec = HaloSpec::empty(2);
        spec.export_rows[1][0] = vec![0];
        spec.import_range[0][1] = 1..2; // owned region, not halo
        let _ = exchange(&group, &[q0, q1], &spec);
    }

    #[test]
    fn exchange_over_sockets_matches_in_process() {
        // The same two-rank exchange as `values_cross_ranks`, but each
        // rank in its own LocalityGroup over a ProcessTransport — real
        // wire bytes, same result.
        let dir = std::env::temp_dir().join(format!("op2-loc-sock-{}", std::process::id()));
        let spec = two_rank_spec(4, 8);
        std::thread::scope(|s| {
            let h0 = s.spawn({
                let dir = dir.clone();
                let spec = spec.clone();
                move || {
                    let t: Arc<dyn Transport> =
                        Arc::new(ProcessTransport::connect_unix(&dir, 0, 2).unwrap());
                    let group = LocalityGroup::with_transport(Op2Config::dataflow(2), t);
                    let c0 = group.rank(0).decl_set(8, "cells");
                    let q0 = group
                        .rank(0)
                        .decl_dat_halo(&c0, 2, "q", vec![0.0f64; 24], 4);
                    let recvs = exchange(&group, std::slice::from_ref(&q0), &spec);
                    recvs[0][1].wait();
                    group.fence();
                    q0.snapshot()
                }
            });
            s.spawn({
                let dir = dir.clone();
                let spec = spec.clone();
                move || {
                    let t: Arc<dyn Transport> =
                        Arc::new(ProcessTransport::connect_unix(&dir, 1, 2).unwrap());
                    let group = LocalityGroup::with_transport(Op2Config::dataflow(2), t);
                    let c1 = group.rank(1).decl_set(4, "cells");
                    let q1 =
                        group
                            .rank(1)
                            .decl_dat(&c1, 2, "q", (0..8).map(|i| i as f64).collect());
                    let recvs = exchange(&group, &[q1], &spec);
                    assert!(
                        recvs[0].iter().all(|f| f.is_ready()),
                        "rank 1 imports nothing"
                    );
                    group.fence();
                    group.barrier();
                }
            });
            let snap = h0.join().unwrap();
            assert_eq!(
                &snap[16..24],
                &(0..8).map(|i| i as f64).collect::<Vec<_>>()[..]
            );
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
