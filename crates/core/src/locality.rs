//! Multi-locality sharding: simulated ranks and asynchronous halo
//! exchange over channel LCOs.
//!
//! The paper's endgame (§VI: "HPX can run distributed") is OP2 loops over
//! a *partitioned* mesh where halo communication hides behind futures
//! instead of bulk-synchronous MPI exchanges. This module provides the
//! runtime side of that design, simulated inside one process:
//!
//! * a [`LocalityGroup`] holds one [`Op2`] context per **rank**. Every
//!   rank declares its own shard of each set/map/dat (the partitioner in
//!   `op2-mesh` computes who owns what); all ranks share a single worker
//!   pool so their tasks interleave like HPX localities on one node.
//! * each sharded dat is declared with [`Op2::decl_dat_halo`]: its owned
//!   rows first, then **halo mirror rows** for the remote-owned elements
//!   its loops reach, grouped contiguously by owner rank.
//! * [`exchange`] refreshes the halo: for every (sender, receiver) pair it
//!   schedules a **send node** (gathers the exported rows once their
//!   writers finish, pushes them through a one-shot channel LCO) and a
//!   **receive node** (pops the channel and scatters into the halo rows).
//!
//! The crucial property is *what the receive node registers as*: a writer
//! of the halo blocks in the dat's per-block epoch table — exactly like a
//! local loop node. A subsequent `par_loop` whose indirect arguments reach
//! halo blocks therefore gates **only the blocks that touch the halo** on
//! the receive future, through the ordinary block-reach dependency
//! collection; its interior blocks carry no such edge and start
//! immediately. Halo blocks are just remote-fed blocks, and communication
//! overlaps interior compute with no global barrier per loop.
//!
//! # Implicit communication: the dirty-bit protocol
//!
//! OP2's contract is that access descriptors fully describe a loop's data
//! movement — which is what lets the runtime insert communication for the
//! user. [`link_halo`] restores that contract at distributed scale: it
//! ties the per-rank shards of one logical dat into a [`HaloRing`]
//! carrying the [`HaloSpec`] and one **dirty bit per (importer, exporter)
//! pair**. From then on no manual [`exchange`] call is needed; `par_loop`
//! submission drives the state machine:
//!
//! * **Write ⇒ stale.** A loop with a *mutating* argument on a linked dat
//!   (any of `OP_WRITE`/`OP_RW`/`OP_INC`, direct or indirect — the owned
//!   rows are the authoritative copies) marks every export of that rank
//!   stale: `dirty[dst][rank] = true` for each peer `dst` importing from
//!   it. Bits start stale at link time (the peers have never been fed).
//! * **Stale read ⇒ exchange.** A loop submitted later with an argument
//!   that *reads* the dat through a halo-capable map (`OP_READ`/`OP_RW`
//!   indirect via a map with halo targets) checks, per peer, (a) the
//!   dirty bit and (b) whether the map's slot can reach that peer's
//!   import blocks at all (the block-reach tables collapsed over source
//!   blocks, see `Map::touched_target_blocks`). For each stale, reachable
//!   import it schedules exactly the [`exchange_with`] gather/send and
//!   receive/scatter nodes into the dataflow graph — *before* the loop's
//!   own nodes are built, so its boundary blocks gate on the receive
//!   through the ordinary epoch tables while interior blocks start
//!   immediately — and clears the bit.
//! * **Clean read ⇒ skip.** A read of an up-to-date import schedules
//!   nothing (counted in [`HaloStats::skipped_clean`]): redundant
//!   exchanges of a manually scheduled program simply disappear.
//!
//! `OP_INC` deliberately does not trigger a refresh: increments are
//! computed without reading the target, and partition-boundary work is
//! executed redundantly by both ranks (OP2's exec-halo), so increments
//! into halo mirrors are dead values. All receives of one refresh share a
//! writer generation (adjacent peers' import ranges may share a
//! dependency block); a refresh superseding an in-flight older receive
//! chains behind it through the ordinary collect-then-record discipline,
//! so no dependency is lost.
//!
//! ```
//! use op2_core::locality::{exchange, HaloSpec, LocalityGroup};
//! use op2_core::Op2Config;
//!
//! // Two ranks; rank 0 mirrors rank 1's first two rows.
//! let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
//! let c0 = group.rank(0).decl_set(4, "cells");
//! let c1 = group.rank(1).decl_set(4, "cells");
//! let q0 = group.rank(0).decl_dat_halo(&c0, 1, "q", vec![0.0f64; 6], 2);
//! let q1 = group.rank(1).decl_dat(&c1, 1, "q", vec![7.0, 8.0, 0.0, 0.0]);
//!
//! let mut spec = HaloSpec::empty(2);
//! spec.export_rows[1][0] = vec![0, 1];
//! spec.import_range[0][1] = 4..6;
//! spec.validate().unwrap();
//!
//! let recvs = exchange(group.ranks(), &[q0.clone(), q1], &spec);
//! recvs[0][1].wait();
//! assert_eq!(&q0.snapshot()[4..6], &[7.0, 8.0]);
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use hpx_rt::lco::oneshot;
use hpx_rt::{schedule_after, Runtime, SharedFuture};

use crate::config::Op2Config;
use crate::dat::Dat;
use crate::gbl::{Global, ReducedFuture, Reducible};
use crate::map::Map;
use crate::types::{next_loop_gen, OpType};
use crate::world::{CommHooks, Op2};

/// A group of simulated ranks sharing one worker pool (see module docs).
pub struct LocalityGroup {
    ranks: Vec<Op2>,
}

impl LocalityGroup {
    /// Creates `nranks` contexts with `config` on a shared runtime.
    pub fn new(config: Op2Config, nranks: usize) -> Self {
        assert!(nranks >= 1, "a locality group needs at least one rank");
        let rt = Arc::new(Runtime::with_name(config.threads, "op2-locality"));
        let ranks = (0..nranks)
            .map(|_| Op2::with_runtime(config.clone(), Arc::clone(&rt)))
            .collect();
        LocalityGroup { ranks }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// The context of one rank.
    pub fn rank(&self, r: usize) -> &Op2 {
        &self.ranks[r]
    }

    /// All rank contexts, indexable by rank id.
    pub fn ranks(&self) -> &[Op2] {
        &self.ranks
    }

    /// Fences every rank — the whole-group global synchronization point.
    pub fn fence(&self) {
        for r in &self.ranks {
            r.fence();
        }
    }

    /// [`link_halo`] as a method: enables implicit, dirty-bit-driven halo
    /// exchange for the per-rank shards of one logical dat.
    pub fn link_halo<T: OpType>(&self, dats: &[Dat<T>], spec: &HaloSpec) {
        link_halo(self, dats, spec);
    }

    /// [`LocalityGroup::allreduce_with`] under default options.
    pub fn allreduce<T: Reducible>(&self, globals: &[Global<T>]) -> ReducedFuture<T> {
        self.allreduce_with(globals, &ExchangeOpts::default())
    }

    /// Schedules an **asynchronous cross-rank allreduce** of the per-rank
    /// globals (`globals[r]` is rank `r`'s shard of one logical reduction,
    /// e.g. the per-rank Airfoil `rms`): each rank contributes its fully
    /// finalized value into a reduction-tree LCO
    /// ([`hpx_rt::lco::collect`]), and the combined result becomes a
    /// [`ReducedFuture`] — nothing blocks the submitting thread.
    ///
    /// Per rank one **contribution node** is scheduled, gated on exactly
    /// that rank's outstanding incrementing loops (its `Global` wait-set),
    /// so a rank whose update finished early contributes immediately while
    /// slower ranks are still computing — and the whole reduce overlaps
    /// the next iteration's interior compute instead of draining every
    /// rank's pipeline the way a host-side `get_scalar` sum does. Values
    /// are combined pairwise up a tree whose shape is fixed by rank index,
    /// so the floating-point result is deterministic for a given rank
    /// count. `opts.link_delay` (shared with [`exchange_with`]) injects a
    /// per-contribution delay modelling the interconnect.
    ///
    /// The nodes are tracked per rank, so [`LocalityGroup::fence`] makes
    /// the future ready.
    ///
    /// # Panics
    ///
    /// If `globals.len() != nranks`, or the globals disagree on `dim` or
    /// reduction operator.
    pub fn allreduce_with<T: Reducible>(
        &self,
        globals: &[Global<T>],
        opts: &ExchangeOpts,
    ) -> ReducedFuture<T> {
        let n = self.nranks();
        assert_eq!(globals.len(), n, "one global shard per rank");
        let dim = globals[0].dim();
        let op = globals[0].op();
        for (r, g) in globals.iter().enumerate() {
            assert_eq!(g.dim(), dim, "rank {r}: allreduce dim mismatch");
            assert_eq!(g.op(), op, "rank {r}: allreduce operator mismatch");
        }
        hpx_rt::static_counter!("op2.reduce.allreduces").fetch_add(1, Ordering::Relaxed);
        hpx_rt::static_counter!("op2.reduce.contributions").fetch_add(n as u64, Ordering::Relaxed);

        let (contribs, value) = hpx_rt::lco::collect(n, move |a: Vec<T>, b: Vec<T>| {
            hpx_rt::static_counter!("op2.reduce.combines").fetch_add(1, Ordering::Relaxed);
            a.iter()
                .zip(b)
                .map(|(&x, y)| T::combine(op, x, y))
                .collect()
        });
        let delay = opts.link_delay;
        let rt = self.rank(0).runtime_arc();
        let mut nodes: Vec<SharedFuture<()>> = Vec::with_capacity(n);
        for (r, c) in contribs.into_iter().enumerate() {
            let hooks = self.rank(r).comm_hooks();
            let deps = globals[r].pending_snapshot();
            let gbl = globals[r].clone();
            let node = schedule_after(hooks.runtime(), &deps, move || {
                if let Some(d) = delay {
                    std::thread::sleep(d);
                }
                c.set(gbl.value_snapshot());
            });
            // The contribution node joins the rank-global's wait-set so a
            // subsequent reset/set/incrementing loop on it orders after
            // this read (same discipline as `Global::reduce_on`).
            globals[r].record_completion(&node);
            hooks.track(node.clone());
            nodes.push(node);
        }
        // Join node: ready only after every contribution node ran — and the
        // final contribution fulfills `value` inside its node, so the
        // ReducedFuture invariant (done ⊇ value ready) holds.
        let done = schedule_after(&rt, &nodes, || ());
        let hooks0 = self.rank(0).comm_hooks();
        hooks0.track(done.clone());
        ReducedFuture::from_parts(value, done, rt, hooks0)
    }
}

impl<T: Reducible> Global<T> {
    /// Asynchronous read of a **group-shared** global: one `Global` cloned
    /// into incrementing loops on several ranks of `group` (legal now that
    /// the wait-set tracks every outstanding loop) is snapshotted by a
    /// single node gated on the *whole* wait-set — the cross-rank sum
    /// already lives in the shared accumulator, so no tree is needed; the
    /// surface just turns the read into a [`ReducedFuture`] like
    /// [`LocalityGroup::allreduce`] does for per-rank shards.
    pub fn reduce_across(&self, group: &LocalityGroup) -> ReducedFuture<T> {
        self.reduce_on(group.rank(0).runtime_arc(), group.rank(0).comm_hooks())
    }
}

impl std::fmt::Debug for LocalityGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalityGroup")
            .field("nranks", &self.ranks.len())
            .finish()
    }
}

/// Who sends which local rows to whom, and where received rows land — the
/// runtime-level mirror of the partitioner's import/export lists, in each
/// rank's *local* row numbering.
///
/// `export_rows[r][s]` lists the owned local rows rank `r` gathers and
/// sends to rank `s`; `import_range[s][r]` is the contiguous halo row
/// range on rank `s` those values land in, in the same order. Halo rows
/// are contiguous per peer because the shard builders group imports by
/// owner rank.
#[derive(Debug, Clone, Default)]
pub struct HaloSpec {
    /// Number of ranks.
    pub nranks: usize,
    /// `export_rows[r][s]`: local rows on rank `r` sent to rank `s`.
    pub export_rows: Vec<Vec<Vec<u32>>>,
    /// `import_range[r][s]`: local halo rows on rank `r` fed by rank `s`.
    pub import_range: Vec<Vec<Range<usize>>>,
}

impl HaloSpec {
    /// A spec with no traffic between `nranks` ranks.
    pub fn empty(nranks: usize) -> Self {
        HaloSpec {
            nranks,
            export_rows: vec![vec![Vec::new(); nranks]; nranks],
            import_range: vec![vec![0..0; nranks]; nranks],
        }
    }

    /// Checks shape and pairwise symmetry: `export_rows[r][s]` must be as
    /// long as `import_range[s][r]`, and the diagonal must be empty.
    pub fn validate(&self) -> Result<(), String> {
        if self.export_rows.len() != self.nranks || self.import_range.len() != self.nranks {
            return Err("spec shape does not match nranks".into());
        }
        for r in 0..self.nranks {
            if self.export_rows[r].len() != self.nranks || self.import_range[r].len() != self.nranks
            {
                return Err(format!("rank {r}: spec row shape does not match nranks"));
            }
            if !self.export_rows[r][r].is_empty() || !self.import_range[r][r].is_empty() {
                return Err(format!("rank {r}: non-empty self exchange"));
            }
            for s in 0..self.nranks {
                let sent = self.export_rows[r][s].len();
                let landed = self.import_range[s][r].len();
                if sent != landed {
                    return Err(format!(
                        "ranks {r}->{s}: {sent} rows exported but {landed} halo rows imported"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Tuning knobs for [`exchange_with`].
#[derive(Debug, Clone, Default)]
pub struct ExchangeOpts {
    /// Artificial per-message delay injected on the send side before the
    /// value enters the channel — models interconnect latency so overlap
    /// benchmarks and tests can measure how much of it interior compute
    /// hides. `None` (the default) sends immediately.
    pub link_delay: Option<Duration>,
}

/// [`exchange_with`] under default options.
pub fn exchange<T: OpType>(
    ranks: &[Op2],
    dats: &[Dat<T>],
    spec: &HaloSpec,
) -> Vec<Vec<SharedFuture<()>>> {
    exchange_with(ranks, dats, spec, &ExchangeOpts::default())
}

/// Schedules one asynchronous halo refresh of `dats` (one per rank, all
/// shards of the same logical dat) according to `spec`, returning the
/// receive-completion futures: `result[r][s]` completes when rank `r`'s
/// halo rows from rank `s` are in place (already-ready for pairs with no
/// traffic).
///
/// Nothing blocks: per nonempty pair this schedules a gather/send node
/// (after the exported rows' pending writers; registered as a *reader* of
/// those blocks so later writers wait for the send) and a receive/scatter
/// node (after the halo rows' pending readers and writers; registered as
/// a *writer* of the halo blocks, which is what gates exactly the
/// boundary blocks of subsequent consumer loops). Values travel through
/// one-shot channel LCOs.
///
/// The receive node additionally lists the send node's completion among
/// its dependencies and pops the channel with a non-blocking `try_recv`.
/// This keeps every node *reactive*: a task that blocked mid-body on
/// `recv()` would pin its stack frame while help-first execution nests
/// other tasks above it, and a nested task whose sender transitively
/// waits on the pinned node completing deadlocks the pool (observed with
/// ≥ 3 ranks exchanging through one worker group).
pub fn exchange_with<T: OpType>(
    ranks: &[Op2],
    dats: &[Dat<T>],
    spec: &HaloSpec,
    opts: &ExchangeOpts,
) -> Vec<Vec<SharedFuture<()>>> {
    let n = spec.nranks;
    assert_eq!(ranks.len(), n, "one Op2 context per rank");
    assert_eq!(dats.len(), n, "one dat shard per rank");
    // All receive nodes of this exchange form one writer generation, like
    // the many nodes of one scattering loop: two peers' halo ranges may
    // share a dependency block, and distinct generations would supersede
    // each other's writer entry (a lost dependency). Sends get their own
    // generation (readers ignore it).
    let send_gen = next_loop_gen();
    let recv_gen = next_loop_gen();
    let hooks: Vec<CommHooks> = ranks.iter().map(|r| r.comm_hooks()).collect();
    let mut recvs: Vec<Vec<SharedFuture<()>>> =
        (0..n).map(|_| vec![SharedFuture::ready(()); n]).collect();

    for src in 0..n {
        for dst in 0..n {
            let rows = &spec.export_rows[src][dst];
            if src == dst || rows.is_empty() {
                continue;
            }
            recvs[dst][src] = schedule_pair(
                src,
                dst,
                &hooks[src],
                &hooks[dst],
                &dats[src],
                &dats[dst],
                rows,
                spec.import_range[dst][src].clone(),
                send_gen,
                recv_gen,
                opts,
            );
        }
    }
    recvs
}

/// Schedules one (src → dst) gather/send + receive/scatter pair — the
/// communication primitive shared by the manual [`exchange_with`] and the
/// implicit [`HaloRing`] refresh. Returns the receive-completion future.
#[allow(clippy::too_many_arguments)]
fn schedule_pair<T: OpType>(
    src: usize,
    dst: usize,
    src_hooks: &CommHooks,
    dst_hooks: &CommHooks,
    dat_src: &Dat<T>,
    dat_dst: &Dat<T>,
    rows: &[u32],
    range: Range<usize>,
    send_gen: u64,
    recv_gen: u64,
    opts: &ExchangeOpts,
) -> SharedFuture<()> {
    assert_eq!(
        rows.len(),
        range.len(),
        "halo spec {src}->{dst}: export/import length mismatch"
    );
    assert!(
        rows.iter().all(|&r| (r as usize) < dat_src.set().size()),
        "halo spec {src}->{dst}: export rows must be owned rows of dat '{}' \
         (halo mirror rows hold possibly-stale copies and are never authoritative)",
        dat_src.name()
    );
    assert!(
        range.end <= dat_dst.total_rows() && range.start >= dat_dst.set().size(),
        "halo spec {src}->{dst}: import range {range:?} outside the halo region of dat '{}'",
        dat_dst.name()
    );
    let (tx, rx) = oneshot::<Vec<T>>();
    let mut deps: Vec<SharedFuture<()>> = Vec::new();

    // --- Send node on `src`: gather + push.
    let bsz = dat_src.dep_block_size().max(1);
    let mut blocks: Vec<usize> = rows.iter().map(|&r| r as usize / bsz).collect();
    blocks.sort_unstable();
    blocks.dedup();
    for &b in &blocks {
        dat_src.deps().collect_block(b, false, &mut deps);
    }
    let gather_rows: Arc<[u32]> = Arc::from(rows);
    let gather_dat = dat_src.clone();
    let delay = opts.link_delay;
    let send_done = schedule_after(src_hooks.runtime(), &deps, move || {
        let dim = gather_dat.dim();
        let mut buf = Vec::with_capacity(gather_rows.len() * dim);
        for &row in gather_rows.iter() {
            // SAFETY: this node was scheduled after every pending
            // writer of the gathered blocks and is registered as a
            // reader, so the rows are stable while it runs. The
            // layout-aware gather keeps the wire format canonical
            // (row-major) whatever the dat's physical layout.
            unsafe {
                gather_dat.append_row_to(row as usize, &mut buf);
            }
        }
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        // A dropped receiver means the exchange was abandoned
        // (e.g. a panicking run); nothing to do.
        let _ = tx.send(buf);
    });
    for &b in &blocks {
        dat_src.deps().record_block(b, false, send_gen, &send_done);
    }
    src_hooks.track(send_done.clone());

    // --- Receive node on `dst`: pop + scatter into the halo.
    // Gated on the send's completion (the value is in the channel
    // by then), never blocked mid-body — see above.
    deps.clear();
    dat_dst.deps().collect_rows(&range, true, &mut deps);
    deps.push(send_done);
    let scatter_dat = dat_dst.clone();
    let scatter_range = range.clone();
    let recv_done = schedule_after(dst_hooks.runtime(), &deps, move || {
        let dim = scatter_dat.dim();
        let buf = rx
            .try_recv()
            .expect("send node completed without filling the channel")
            .expect("halo sender dropped before sending");
        assert_eq!(buf.len(), scatter_range.len() * dim, "halo payload size");
        // SAFETY: scheduled after every pending reader and writer
        // of the halo blocks, and registered as their writer, so
        // this node has exclusive access to the rows. The payload is
        // canonical row-major; the scatter re-strides it into the
        // dat's physical layout.
        unsafe {
            scatter_dat.scatter_rows_from(scatter_range.start, &buf);
        }
    });
    dat_dst
        .deps()
        .record_rows(&range, true, recv_gen, &recv_done);
    dst_hooks.track(recv_done.clone());
    recv_done
}

// ---------------------------------------------------------------------------
// Implicit communication: dirty-bit halo rings
// ---------------------------------------------------------------------------

/// Counters of one halo ring's implicit-communication activity (see
/// [`implicit_halo_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HaloStats {
    /// (src → dst) pair exchanges actually scheduled.
    pub pair_exchanges: u64,
    /// Loop submissions that checked this ring for stale imports.
    pub refresh_calls: u64,
    /// Per-pair checks that found the import clean and scheduled nothing —
    /// the exchanges a manual schedule would have issued redundantly.
    pub skipped_clean: u64,
}

/// The shared state tying the per-rank shards of one logical dat together
/// for implicit communication: halo spec, per-peer dirty bits, and the
/// scheduling hooks of every rank (see the module-level dirty-bit
/// protocol). Created by [`link_halo`]; not user-visible beyond
/// [`HaloStats`].
pub(crate) struct HaloRing<T> {
    spec: HaloSpec,
    opts: ExchangeOpts,
    /// Weak so ring ↔ dat references cannot leak the payloads; a shard
    /// must outlive the ring's use, which the owning program guarantees by
    /// holding the `Dat` handles it loops over.
    shards: Vec<std::sync::Weak<crate::dat::DatInner<T>>>,
    hooks: Vec<CommHooks>,
    /// `dirty[dst * nranks + src]`: rank `dst`'s import from `src` is
    /// stale.
    dirty: Mutex<Vec<bool>>,
    pair_exchanges: AtomicU64,
    refresh_calls: AtomicU64,
    skipped_clean: AtomicU64,
}

impl<T: OpType> HaloRing<T> {
    fn shard(&self, rank: usize) -> Dat<T> {
        self.shards[rank]
            .upgrade()
            .map(Dat::from_inner)
            .unwrap_or_else(|| {
                panic!("halo ring: rank {rank}'s dat shard was dropped while the ring is in use")
            })
    }

    /// A mutating loop argument on rank `src`'s shard: every peer
    /// importing from `src` now holds a stale mirror.
    pub(crate) fn mark_exports_dirty(&self, src: usize) {
        let n = self.spec.nranks;
        let mut dirty = self.dirty.lock();
        for dst in 0..n {
            if dst != src && !self.spec.export_rows[src][dst].is_empty() {
                dirty[dst * n + src] = true;
            }
        }
    }

    /// A reading loop argument on rank `dst`'s shard, indirect through
    /// `map` slot `slot`: schedule the exchange for every stale import the
    /// map can actually observe, then clear those bits. All receives of
    /// one refresh share a writer generation, exactly like one
    /// [`exchange_with`] call.
    pub(crate) fn refresh_for_read(&self, dst: usize, map: &Map, slot: usize) {
        self.refresh_calls.fetch_add(1, Ordering::Relaxed);
        let n = self.spec.nranks;
        let dat_dst = self.shard(dst);
        let to_bs = dat_dst.dep_block_size().max(1);
        let mut gens: Option<(u64, u64)> = None;
        let mut dirty = self.dirty.lock();
        for src in 0..n {
            if src == dst {
                continue;
            }
            let range = self.spec.import_range[dst][src].clone();
            if range.is_empty() {
                continue;
            }
            if !dirty[dst * n + src] {
                self.skipped_clean.fetch_add(1, Ordering::Relaxed);
                hpx_rt::static_counter!("op2.halo.refresh_skipped").fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Leave the bit set when this map cannot observe the import at
            // all — a later loop through a reaching map still needs it.
            let block_range = range.start / to_bs..(range.end - 1) / to_bs + 1;
            if !map.reaches_target_blocks(slot, to_bs, block_range) {
                continue;
            }
            let (send_gen, recv_gen) =
                *gens.get_or_insert_with(|| (next_loop_gen(), next_loop_gen()));
            let dat_src = self.shard(src);
            // The receive is not waited on here: it is registered as a
            // writer of the halo blocks, so the submitting loop's boundary
            // blocks (and any rank fence) chain behind it.
            let _ = schedule_pair(
                src,
                dst,
                &self.hooks[src],
                &self.hooks[dst],
                &dat_src,
                &dat_dst,
                &self.spec.export_rows[src][dst],
                range,
                send_gen,
                recv_gen,
                &self.opts,
            );
            dirty[dst * n + src] = false;
            self.pair_exchanges.fetch_add(1, Ordering::Relaxed);
            hpx_rt::static_counter!("op2.halo.pairs_fired").fetch_add(1, Ordering::Relaxed);
        }
    }

    fn stats(&self) -> HaloStats {
        HaloStats {
            pair_exchanges: self.pair_exchanges.load(Ordering::Relaxed),
            refresh_calls: self.refresh_calls.load(Ordering::Relaxed),
            skipped_clean: self.skipped_clean.load(Ordering::Relaxed),
        }
    }
}

/// [`link_halo_with`] under default exchange options.
pub fn link_halo<T: OpType>(group: &LocalityGroup, dats: &[Dat<T>], spec: &HaloSpec) {
    link_halo_with(group, dats, spec, &ExchangeOpts::default());
}

/// Ties the per-rank shards of one logical dat into a [`HaloRing`] so all
/// halo communication becomes **implicit**: loops that mutate a shard mark
/// its exports stale, loops that read stale imports through a halo-capable
/// map schedule the exchange automatically (see the module-level dirty-bit
/// protocol). Every import starts stale, so the first reader is fed
/// unconditionally.
///
/// `dats[r]` must be rank `r`'s shard (declared with
/// [`crate::Op2::decl_dat_halo`] on `group.rank(r)`), and each shard can
/// belong to at most one ring.
pub fn link_halo_with<T: OpType>(
    group: &LocalityGroup,
    dats: &[Dat<T>],
    spec: &HaloSpec,
    opts: &ExchangeOpts,
) {
    let n = spec.nranks;
    assert_eq!(group.nranks(), n, "one rank context per spec rank");
    assert_eq!(dats.len(), n, "one dat shard per rank");
    spec.validate().expect("halo spec invalid");
    for (r, d) in dats.iter().enumerate() {
        for s in 0..n {
            let range = &spec.import_range[r][s];
            assert!(
                range.is_empty() || (range.start >= d.set().size() && range.end <= d.total_rows()),
                "link_halo: rank {r} import range {range:?} outside the halo region of dat '{}'",
                d.name()
            );
        }
    }
    let mut dirty = vec![false; n * n];
    for dst in 0..n {
        for src in 0..n {
            dirty[dst * n + src] = dst != src && !spec.import_range[dst][src].is_empty();
        }
    }
    let ring = Arc::new(HaloRing {
        spec: spec.clone(),
        opts: opts.clone(),
        shards: dats.iter().map(Dat::inner_weak).collect(),
        hooks: group.ranks().iter().map(Op2::comm_hooks).collect(),
        dirty: Mutex::new(dirty),
        pair_exchanges: AtomicU64::new(0),
        refresh_calls: AtomicU64::new(0),
        skipped_clean: AtomicU64::new(0),
    });
    for (r, d) in dats.iter().enumerate() {
        d.attach_halo_ring(r, Arc::clone(&ring));
    }
}

/// The implicit-communication counters of the ring `dat` belongs to
/// (`None` for unlinked dats). Every shard of a ring reports the same,
/// ring-wide numbers.
pub fn implicit_halo_stats<T: OpType>(dat: &Dat<T>) -> Option<HaloStats> {
    dat.halo_ring().map(|(_, ring)| ring.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arg::{arg_read_via, arg_write};

    fn two_rank_spec(halo: usize, owned: usize) -> HaloSpec {
        let mut spec = HaloSpec::empty(2);
        spec.export_rows[1][0] = (0..halo as u32).collect();
        spec.import_range[0][1] = owned..owned + halo;
        spec
    }

    #[test]
    fn values_cross_ranks() {
        let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
        let c0 = group.rank(0).decl_set(8, "cells");
        let c1 = group.rank(1).decl_set(4, "cells");
        let q0 = group
            .rank(0)
            .decl_dat_halo(&c0, 2, "q", vec![0.0f64; 24], 4);
        let q1 = group
            .rank(1)
            .decl_dat(&c1, 2, "q", (0..8).map(|i| i as f64).collect());
        let spec = two_rank_spec(4, 8);
        spec.validate().unwrap();
        let recvs = exchange(group.ranks(), &[q0.clone(), q1], &spec);
        recvs[0][1].wait();
        assert!(recvs[0][0].is_ready(), "no-traffic pairs are ready");
        let snap = q0.snapshot();
        assert_eq!(
            &snap[16..24],
            &(0..8).map(|i| i as f64).collect::<Vec<_>>()[..]
        );
        assert!(snap[..16].iter().all(|&v| v == 0.0), "owned rows untouched");
    }

    #[test]
    fn exchange_waits_for_pending_writer_of_exported_rows() {
        let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
        let c0 = group.rank(0).decl_set(4, "cells");
        let c1 = group.rank(1).decl_set(4, "cells");
        let q0 = group.rank(0).decl_dat_halo(&c0, 1, "q", vec![0.0f64; 8], 4);
        let q1 = group.rank(1).decl_dat(&c1, 1, "q", vec![0.0f64; 4]);
        // The writer is still pending when the exchange is scheduled.
        group
            .rank(1)
            .loop_("w", &c1)
            .arg(arg_write(&q1))
            .run(|q: &mut [f64]| {
                q[0] = 9.0;
            });
        let spec = two_rank_spec(4, 4);
        let recvs = exchange(group.ranks(), &[q0.clone(), q1], &spec);
        recvs[0][1].wait();
        assert_eq!(&q0.snapshot()[4..8], &[9.0; 4]);
    }

    #[test]
    fn consumer_loop_after_exchange_reads_fresh_halo() {
        let group = LocalityGroup::new(Op2Config::dataflow(2).with_block_size(2), 2);
        let c0 = group.rank(0).decl_set(4, "cells");
        let c1 = group.rank(1).decl_set(2, "cells");
        let q0 = group.rank(0).decl_dat_halo(&c0, 1, "q", vec![1.0f64; 6], 2);
        let q1 = group.rank(1).decl_dat(&c1, 1, "q", vec![5.0f64, 6.0]);
        let spec = two_rank_spec(2, 4);
        exchange(group.ranks(), &[q0.clone(), q1], &spec);
        // Gather through a map that reaches the halo rows.
        let edges = group.rank(0).decl_set(6, "edges");
        let m = group
            .rank(0)
            .decl_map_halo(&edges, &c0, 1, (0..6).collect(), "ident", 2);
        let out = group.rank(0).decl_dat(&edges, 1, "out", vec![0.0f64; 6]);
        let h = group
            .rank(0)
            .loop_("gather", &edges)
            .arg(arg_read_via(&q0, &m, 0))
            .arg(arg_write(&out))
            .run(|q: &[f64], o: &mut [f64]| o[0] = q[0]);
        h.wait();
        assert_eq!(out.snapshot(), vec![1.0, 1.0, 1.0, 1.0, 5.0, 6.0]);
    }

    #[test]
    fn spec_validation_catches_asymmetry() {
        let mut spec = HaloSpec::empty(2);
        spec.export_rows[1][0] = vec![0, 1];
        spec.import_range[0][1] = 4..5; // one row short
        assert!(spec.validate().is_err());
        spec.import_range[0][1] = 4..6;
        assert!(spec.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "outside the halo region")]
    fn import_range_must_lie_in_the_halo() {
        let group = LocalityGroup::new(Op2Config::dataflow(1), 2);
        let c0 = group.rank(0).decl_set(4, "cells");
        let c1 = group.rank(1).decl_set(4, "cells");
        let q0 = group.rank(0).decl_dat_halo(&c0, 1, "q", vec![0.0f64; 8], 4);
        let q1 = group.rank(1).decl_dat(&c1, 1, "q", vec![0.0f64; 4]);
        let mut spec = HaloSpec::empty(2);
        spec.export_rows[1][0] = vec![0];
        spec.import_range[0][1] = 1..2; // owned region, not halo
        let _ = exchange(group.ranks(), &[q0, q1], &spec);
    }
}
