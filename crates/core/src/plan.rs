//! Execution plans: mini-partition blocks + greedy block coloring.
//!
//! This is the shared-memory execution strategy of the OP2 library that the
//! paper's backends inherit: the iteration set is partitioned into
//! contiguous *blocks*; blocks that increment the same target element
//! through any indirection map receive different *colors*; blocks of one
//! color can run concurrently without races, and colors execute as
//! successive rounds. The fork-join backend places a global barrier after
//! every round; the dataflow backend chains rounds with futures.
//!
//! Plans are cached per (set, block size, indirection signature) exactly
//! like OP2's `op_plan_get`.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::arg::{ArgInfo, ArgKind};
use crate::map::Map;
use crate::set::Set;

/// A conflict source: a map slot used with a mutating access mode.
#[derive(Clone)]
pub(crate) struct Conflict {
    pub map: Map,
    pub idx: usize,
}

/// The execution plan of an indirect loop.
#[derive(Debug)]
pub struct Plan {
    /// Block size used to partition the set.
    pub block_size: usize,
    /// Contiguous element ranges, one per block.
    pub blocks: Vec<Range<usize>>,
    /// Color of each block.
    pub block_color: Vec<u32>,
    /// Number of colors.
    pub ncolors: usize,
    /// Block ids grouped by color, ascending within a color.
    pub color_blocks: Vec<Vec<usize>>,
}

impl Plan {
    /// Builds a plan for a set of `n` elements. `conflicts` lists every
    /// (map, slot) reached with a mutating access; an empty list yields a
    /// single-color plan (a *direct* loop needs no coloring at all, but a
    /// trivial plan keeps the executors uniform).
    pub(crate) fn build(n: usize, block_size: usize, conflicts: &[Conflict]) -> Plan {
        let block_size = block_size.max(1);
        let nblocks = n.div_ceil(block_size);
        let blocks: Vec<Range<usize>> = (0..nblocks)
            .map(|b| b * block_size..((b + 1) * block_size).min(n))
            .collect();

        // Group conflict slots by map so each map's target masks are
        // walked once per block.
        let mut by_map: Vec<(Map, Vec<usize>)> = Vec::new();
        for c in conflicts {
            match by_map.iter_mut().find(|(m, _)| m.id() == c.map.id()) {
                Some((_, idxs)) => {
                    if !idxs.contains(&c.idx) {
                        idxs.push(c.idx);
                    }
                }
                None => by_map.push((c.map.clone(), vec![c.idx])),
            }
        }

        if by_map.is_empty() || nblocks <= 1 {
            let ncolors = usize::from(nblocks > 0);
            return Plan {
                block_size,
                block_color: vec![0; nblocks],
                ncolors,
                color_blocks: if nblocks > 0 {
                    vec![(0..nblocks).collect()]
                } else {
                    Vec::new()
                },
                blocks,
            };
        }

        // Greedy coloring with a growable per-target color bitmask. Start
        // with one 64-bit word per target; on the (rare) overflow, widen
        // and restart.
        let mut words = 1usize;
        let block_color = loop {
            match try_color(&blocks, &by_map, words) {
                Some(colors) => break colors,
                None => words += 1,
            }
        };
        let ncolors = block_color
            .iter()
            .copied()
            .max()
            .map_or(0, |c| c as usize + 1);
        let mut color_blocks = vec![Vec::new(); ncolors];
        for (b, &c) in block_color.iter().enumerate() {
            color_blocks[c as usize].push(b);
        }
        Plan {
            block_size,
            blocks,
            block_color,
            ncolors,
            color_blocks,
        }
    }

    /// Number of blocks.
    pub fn nblocks(&self) -> usize {
        self.blocks.len()
    }
}

/// One greedy pass with `words * 64` available colors. Returns `None` if
/// some block found every color forbidden (caller widens and retries).
fn try_color(
    blocks: &[Range<usize>],
    by_map: &[(Map, Vec<usize>)],
    words: usize,
) -> Option<Vec<u32>> {
    // masks[m] is a flat [target_count x words] bitset of colors already
    // used by blocks touching that target.
    // Masks cover the full addressable target range — including a sharded
    // dat's halo mirror rows, which conflict exactly like owned rows.
    let mut masks: Vec<Vec<u64>> = by_map
        .iter()
        .map(|(m, _)| vec![0u64; m.target_rows() * words])
        .collect();
    let mut colors = Vec::with_capacity(blocks.len());
    let mut forbidden = vec![0u64; words];

    for block in blocks {
        forbidden.iter_mut().for_each(|w| *w = 0);
        for (mi, (map, idxs)) in by_map.iter().enumerate() {
            let mask = &masks[mi];
            for e in block.clone() {
                for &k in idxs {
                    let t = map.at(e, k);
                    let base = t * words;
                    for w in 0..words {
                        forbidden[w] |= mask[base + w];
                    }
                }
            }
        }
        // First free color.
        let mut color = None;
        for (w, &bits) in forbidden.iter().enumerate() {
            if bits != u64::MAX {
                color = Some((w * 64 + (!bits).trailing_zeros() as usize) as u32);
                break;
            }
        }
        let color = color?;
        colors.push(color);
        let (cw, cb) = ((color / 64) as usize, color % 64);
        for (mi, (map, idxs)) in by_map.iter().enumerate() {
            let mask = &mut masks[mi];
            for e in block.clone() {
                for &k in idxs {
                    let t = map.at(e, k);
                    mask[t * words + cw] |= 1u64 << cb;
                }
            }
        }
    }
    Some(colors)
}

/// Validates the fundamental plan invariant: no two blocks of the same
/// color touch a common target through any conflict map. Used by debug
/// assertions and the property tests.
pub fn validate_coloring(plan: &Plan, conflicts: &[(Map, usize)]) -> Result<(), String> {
    for (color, blocks) in plan.color_blocks.iter().enumerate() {
        for (map, idx) in conflicts {
            let mut owner: HashMap<usize, usize> = HashMap::new();
            for &b in blocks {
                for e in plan.blocks[b].clone() {
                    let t = map.at(e, *idx);
                    if let Some(prev) = owner.insert(t, b) {
                        if prev != b {
                            return Err(format!(
                                "color {color}: blocks {prev} and {b} share target {t} of map '{}'",
                                map.name()
                            ));
                        }
                    }
                }
            }
        }
    }
    // Coverage: blocks tile 0..n.
    let mut next = 0;
    for r in &plan.blocks {
        if r.start != next {
            return Err(format!("block gap at {next}"));
        }
        next = r.end;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Block-reach tables (block-granular dataflow)
// ---------------------------------------------------------------------------

/// For every source block of a partitioned iteration set: which dependency
/// blocks of the map's target set the block touches through one map slot.
/// This is the plan-level information the block-granular dataflow engine
/// wires node dependencies with — the indirect-argument analogue of a
/// direct argument's "block i touches rows `i*bs..(i+1)*bs`".
///
/// Built once per `(map, slot, source block size, target block size)` and
/// cached on the [`Map`] (see [`Map::block_reach`]); the target lists are
/// sorted and deduplicated.
pub(crate) type BlockReach = Vec<Vec<u32>>;

/// Builds the [`BlockReach`] of `map` slot `slot` for a source set
/// partitioned into `from_bs`-sized blocks and a target dependency table
/// with `to_bs`-sized blocks.
pub(crate) fn build_block_reach(
    map: &Map,
    slot: usize,
    from_bs: usize,
    to_bs: usize,
) -> BlockReach {
    let n = map.from_set().size();
    let from_bs = from_bs.max(1);
    let to_bs = to_bs.max(1);
    let nblocks = n.div_ceil(from_bs);
    let mut reach: BlockReach = Vec::with_capacity(nblocks);
    for b in 0..nblocks {
        let range = b * from_bs..((b + 1) * from_bs).min(n);
        let mut targets: Vec<u32> = range.map(|e| (map.at(e, slot) / to_bs) as u32).collect();
        targets.sort_unstable();
        targets.dedup();
        reach.push(targets);
    }
    reach
}

pub(crate) fn conflicts_of(infos: &[ArgInfo]) -> Vec<Conflict> {
    infos
        .iter()
        .filter(|i| i.access.is_mut())
        .filter_map(|i| match &i.kind {
            ArgKind::Indirect { map, idx } => Some(Conflict {
                map: map.clone(),
                idx: *idx,
            }),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Plan cache (OP2 `op_plan_get`)
// ---------------------------------------------------------------------------

#[derive(PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    set: u64,
    block_size: usize,
    conflicts: Vec<(u64, usize)>,
}

#[derive(Default)]
pub(crate) struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<Plan>>>,
    hits: Mutex<u64>,
}

impl PlanCache {
    pub fn get(&self, set: &Set, block_size: usize, conflicts: &[Conflict]) -> Arc<Plan> {
        let mut key_conflicts: Vec<(u64, usize)> =
            conflicts.iter().map(|c| (c.map.id(), c.idx)).collect();
        key_conflicts.sort_unstable();
        key_conflicts.dedup();
        let key = PlanKey {
            set: set.id(),
            block_size,
            conflicts: key_conflicts,
        };
        if let Some(p) = self.plans.lock().get(&key) {
            *self.hits.lock() += 1;
            return Arc::clone(p);
        }
        let plan = Arc::new(Plan::build(set.size(), block_size, conflicts));
        #[cfg(debug_assertions)]
        {
            let pairs: Vec<(Map, usize)> =
                conflicts.iter().map(|c| (c.map.clone(), c.idx)).collect();
            if let Err(e) = validate_coloring(&plan, &pairs) {
                panic!("plan validation failed for set '{}': {e}", set.name());
            }
        }
        self.plans
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::clone(&plan));
        plan
    }

    pub fn built(&self) -> usize {
        self.plans.lock().len()
    }

    pub fn hits(&self) -> u64 {
        *self.hits.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring of n edges over n nodes: edge e -> nodes (e, e+1 mod n).
    fn ring(n: usize) -> (Set, Set, Map) {
        let edges = Set::new(n, "edges");
        let nodes = Set::new(n, "nodes");
        let mut idx = Vec::with_capacity(2 * n);
        for e in 0..n {
            idx.push(e as u32);
            idx.push(((e + 1) % n) as u32);
        }
        let m = Map::new(&edges, &nodes, 2, idx, "pedge");
        (edges, nodes, m)
    }

    fn ring_conflicts(m: &Map) -> Vec<Conflict> {
        vec![
            Conflict {
                map: m.clone(),
                idx: 0,
            },
            Conflict {
                map: m.clone(),
                idx: 1,
            },
        ]
    }

    #[test]
    fn direct_plan_single_color() {
        let p = Plan::build(1000, 128, &[]);
        assert_eq!(p.ncolors, 1);
        assert_eq!(p.nblocks(), 8);
        assert_eq!(p.color_blocks[0].len(), 8);
    }

    #[test]
    fn ring_coloring_is_valid() {
        let (_e, _n, m) = ring(1000);
        let conflicts = ring_conflicts(&m);
        let p = Plan::build(1000, 64, &conflicts);
        assert!(p.ncolors >= 2, "adjacent blocks share boundary nodes");
        let pairs: Vec<(Map, usize)> = conflicts.iter().map(|c| (c.map.clone(), c.idx)).collect();
        validate_coloring(&p, &pairs).unwrap();
    }

    #[test]
    fn every_block_appears_once_in_color_lists() {
        let (_e, _n, m) = ring(500);
        let p = Plan::build(500, 32, &ring_conflicts(&m));
        let mut seen = vec![false; p.nblocks()];
        for blocks in &p.color_blocks {
            for &b in blocks {
                assert!(!seen[b], "block {b} colored twice");
                seen[b] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_set_plan() {
        let p = Plan::build(0, 64, &[]);
        assert_eq!(p.nblocks(), 0);
        assert_eq!(p.ncolors, 0);
    }

    #[test]
    fn single_block_needs_one_color() {
        let (_e, _n, m) = ring(10);
        let p = Plan::build(10, 64, &ring_conflicts(&m));
        assert_eq!(p.nblocks(), 1);
        assert_eq!(p.ncolors, 1);
    }

    #[test]
    fn pathological_all_to_one_map_serializes() {
        // Every edge increments node 0: every block conflicts with every
        // other, so #colors == #blocks.
        let edges = Set::new(256, "edges");
        let nodes = Set::new(1, "node");
        let m = Map::new(&edges, &nodes, 1, vec![0; 256], "all_to_one");
        let conflicts = vec![Conflict {
            map: m.clone(),
            idx: 0,
        }];
        let p = Plan::build(256, 2, &conflicts);
        assert_eq!(p.ncolors, p.nblocks(), "total conflict must serialize");
        assert!(p.ncolors > 64, "exercises the multi-word bitmask path");
        validate_coloring(&p, &[(m, 0)]).unwrap();
    }

    #[test]
    fn block_reach_covers_exactly_the_touched_blocks() {
        let (_e, _n, m) = ring(100);
        // Source blocks of 10 edges, target dep-blocks of 25 nodes.
        let reach = build_block_reach(&m, 1, 10, 25);
        assert_eq!(reach.len(), 10);
        // Block 0 covers edges 0..10 -> slot-1 nodes 1..=10 -> block 0
        // only; block 2 covers edges 20..30 -> nodes 21..=30 -> blocks 0,1.
        assert_eq!(reach[0], vec![0]);
        assert_eq!(reach[2], vec![0, 1]);
        // The last block wraps: edges 90..100 -> nodes 91..=99 and 0.
        assert_eq!(reach[9], vec![0, 3]);
        // Exhaustive cross-check against the map itself.
        for (b, targets) in reach.iter().enumerate() {
            for e in b * 10..((b + 1) * 10).min(100) {
                let t = (m.at(e, 1) / 25) as u32;
                assert!(targets.contains(&t), "block {b} missing target {t}");
            }
        }
    }

    #[test]
    fn block_reach_is_cached_per_key() {
        let (_e, _n, m) = ring(64);
        let a = m.block_reach(0, 16, 16);
        let b = m.block_reach(0, 16, 16);
        assert!(Arc::ptr_eq(&a, &b), "same key must hit the cache");
        let c = m.block_reach(1, 16, 16);
        assert!(!Arc::ptr_eq(&a, &c), "different slot, different table");
    }

    #[test]
    fn plan_cache_hits() {
        let (_e, _n, m) = ring(100);
        let set = m.from_set().clone();
        let cache = PlanCache::default();
        let c = ring_conflicts(&m);
        let p1 = cache.get(&set, 16, &c);
        let p2 = cache.get(&set, 16, &c);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.built(), 1);
        assert_eq!(cache.hits(), 1);
        // Different block size -> different plan.
        let p3 = cache.get(&set, 32, &c);
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(cache.built(), 2);
    }
}
