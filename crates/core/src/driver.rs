//! The loop driver: one entry point, three backends.
//!
//! * **Seq** — reference execution on the calling thread.
//! * **ForkJoin** — the OpenMP-equivalent baseline: synchronous parallel
//!   chunks with a global barrier after every loop and every color round.
//! * **Dataflow** — block-granular dataflow (the paper's design, pushed
//!   from whole-loop to mini-partition granularity): the loop becomes one
//!   dataflow node *per block*, each gated only on the predecessor nodes
//!   covering the dependency blocks its arguments actually touch (see
//!   [`crate::dat`] for the epoch tables and [`crate::plan`] for the
//!   block-reach tables). A RAW-dependent successor starts its first
//!   blocks while the predecessor's last blocks are still running —
//!   dependent loops *pipeline* instead of chaining whole-loop futures.
//!   Indirect loops keep their color rounds: nodes of round *r* also wait
//!   on a round gate joining round *r−1*, which serializes exactly the
//!   intra-loop conflicts the plan colored apart while leaving loop-to-loop
//!   edges block-granular.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use hpx_rt::{
    schedule_after, when_all_shared, ChunkPolicy, ExecutionPolicy, GranularityFeedback,
    PrefetchSet, SharedFuture,
};

use crate::arg::{ArgInfo, ArgKind, BlockCtx};
use crate::config::Backend;
use crate::plan::{conflicts_of, Plan};
use crate::set::Set;
use crate::types::Access;
use crate::world::{record_loop_time, Op2};

/// Per-block dependency collection over all of a loop's arguments.
pub(crate) type CollectBlockFn = Arc<dyn Fn(&BlockCtx, &mut Vec<SharedFuture<()>>) + Send + Sync>;
/// Loop-level dependency collection (what the finalize node waits for
/// beyond the loop's own blocks — e.g. a previous reduction's finalize).
pub(crate) type CollectLoopFn = Arc<dyn Fn(&mut Vec<SharedFuture<()>>) + Send + Sync>;
/// Per-block completion recording over all of a loop's arguments.
pub(crate) type RecordBlockFn = Arc<dyn Fn(&BlockCtx, &SharedFuture<()>) + Send + Sync>;
/// Loop-level completion recording (global reductions).
pub(crate) type RecordLoopFn = Arc<dyn Fn(&SharedFuture<()>) + Send + Sync>;

/// Everything the driver needs, pre-assembled by the `par_loop*` fronts.
pub(crate) struct LoopSpec {
    /// Kernel name (`Arc` so per-submission bookkeeping — spec-cache keys,
    /// stats, the handle — shares one allocation).
    pub name: Arc<str>,
    pub set: Set,
    pub infos: Vec<ArgInfo>,
    /// Whole-loop dependencies (synchronous backends only; empty under
    /// dataflow, which collects per block via `collect_block`).
    pub deps: Vec<SharedFuture<()>>,
    /// Loop-generation stamp shared by every node of this loop.
    pub gen: u64,
    /// Executes the kernel over a contiguous element range and commits
    /// per-chunk state (reduction partials).
    pub block_body: Arc<dyn Fn(Range<usize>) + Send + Sync>,
    /// The loop's gathered (indirect) containers, registered through the
    /// maps' index tables — `None` for direct loops. The dataflow driver
    /// uses it for **cross-node prefetching**: while node *b* executes,
    /// it warms the cache with the first elements node *b+1* will gather,
    /// at a look-ahead resolved from the granularity feedback's measured
    /// per-element cost (see [`gather_lookahead`]).
    pub gather: Option<Arc<PrefetchSet>>,
    /// Runs once after all chunks: merges reductions.
    pub finalize: Arc<dyn Fn() + Send + Sync>,
    /// Per-block dependency collection over all arguments.
    pub collect_block: CollectBlockFn,
    /// Loop-level dependency collection for the finalize node.
    pub collect_loop: CollectLoopFn,
    /// Per-block completion recording over all arguments.
    pub record_block: RecordBlockFn,
    /// Loop-level completion recording (global reductions).
    pub record_loop: RecordLoopFn,
}

/// Runs (or schedules) the loop; returns its completion future.
pub(crate) fn drive(world: &Op2, spec: LoopSpec) -> SharedFuture<()> {
    match world.config().backend {
        Backend::Seq => drive_sync(world, spec, /*parallel=*/ false),
        Backend::ForkJoin => drive_sync(world, spec, /*parallel=*/ true),
        Backend::Dataflow => drive_dataflow(world, spec),
    }
}

fn policy_of(world: &Op2) -> ExecutionPolicy {
    hpx_rt::par().with_chunk(world.config().chunk.clone())
}

fn drive_sync(world: &Op2, spec: LoopSpec, parallel: bool) -> SharedFuture<()> {
    // Any pending dataflow loops from a mixed-backend context must drain
    // first; under pure Seq/ForkJoin these futures are already ready.
    for d in &spec.deps {
        d.wait();
    }
    let n = spec.set.size();
    let t0 = Instant::now();
    // A rank-tagged world attributes whole-loop time to its rank through
    // the feedback clock (so Seq sharded runs feed the rebalancer's
    // imbalance signal — deterministically, under a fake clock).
    let fb = world.granularity_feedback();
    let start_ns = fb.rank().is_some().then(|| fb.clock().now_ns());
    if n > 0 {
        if !parallel {
            (spec.block_body)(0..n);
        } else {
            run_parallel_phases(world, &spec, n);
        }
    }
    (spec.finalize)();
    if let Some(start) = start_ns {
        let elapsed = fb.clock().now_ns().saturating_sub(start);
        fb.record(&spec.name, spec.set.signature(), n, elapsed);
    }
    record_loop_time(&world.stats_handle(), &spec.name, t0.elapsed());
    SharedFuture::ready(())
}

/// The synchronous parallel schedule: direct loops are one chunked
/// parallel-for; indirect loops run color rounds, each ending in an
/// implicit global barrier (the `for_each_chunk` join).
fn run_parallel_phases(world: &Op2, spec: &LoopSpec, n: usize) {
    let rt = world.runtime();
    let policy = policy_of(world);
    let conflicts = conflicts_of(&spec.infos);
    if conflicts.is_empty() {
        hpx_rt::for_each_chunk(rt, &policy, 0..n, |r| (spec.block_body)(r));
        return;
    }
    let plan = world
        .plans()
        .get(&spec.set, world.config().block_size, &conflicts);
    for color_list in &plan.color_blocks {
        hpx_rt::for_each_chunk(rt, &policy, 0..color_list.len(), |br| {
            for bi in br {
                (spec.block_body)(plan.blocks[color_list[bi]].clone());
            }
        });
        // <- implicit global barrier per color round (and per loop): this
        // is precisely the synchronization the dataflow backend removes.
    }
}

/// The block partition and color rounds a dataflow loop schedules over:
/// either trivial block-size-aligned blocks in a single round (direct
/// loops, no plan-cache entry — the cache stays a census of *colored*
/// shapes, mirroring OP2's `op_plan_get`) or a borrowed view of the
/// cached plan (no per-submission copies of its block/color tables).
enum Schedule {
    Direct {
        block_size: usize,
        blocks: Vec<Range<usize>>,
        round: Vec<usize>,
    },
    Planned(Arc<Plan>),
}

impl Schedule {
    fn blocks(&self) -> &[Range<usize>] {
        match self {
            Schedule::Direct { blocks, .. } => blocks,
            Schedule::Planned(plan) => &plan.blocks,
        }
    }

    fn rounds(&self) -> &[Vec<usize>] {
        match self {
            Schedule::Direct { round, .. } => std::slice::from_ref(round),
            Schedule::Planned(plan) => &plan.color_blocks,
        }
    }

    /// The uniform node granularity the schedule was built with — what
    /// every node's `BlockCtx::block_size` (and thus the block-reach
    /// resolution of indirect arguments) must use.
    fn block_size(&self) -> usize {
        match self {
            Schedule::Direct { block_size, .. } => *block_size,
            Schedule::Planned(plan) => plan.block_size,
        }
    }
}

// ---------------------------------------------------------------------------
// Feedback-resolved node granularity
// ---------------------------------------------------------------------------

/// Rounds to the nearest power of two in log space (`x >= 1`). The
/// quantization is the chunker's hysteresis: measured costs jitter, but
/// the resolved granularity only moves when the ideal size crosses a
/// power-of-two midpoint — so a converged workload stops re-planning.
fn pow2_round(x: f64) -> usize {
    let exp = x.max(1.0).log2().round() as u32;
    1usize << exp.min(usize::BITS - 2)
}

/// Largest power of two `<= x` (`x >= 1`).
fn pow2_floor(x: usize) -> usize {
    let mut p = 1usize;
    while p * 2 <= x {
        p *= 2;
    }
    p
}

/// Sizes a node to take ~`target_ns` at `per_elem_ns`, quantized to a
/// power of two, capped for load balance (at least ~2 nodes per worker
/// where the set allows it) and clamped to `[min, n]`.
fn feedback_block_size(
    target_ns: u64,
    per_elem_ns: f64,
    n: usize,
    threads: usize,
    min: usize,
) -> usize {
    let ideal = target_ns as f64 / per_elem_ns.max(1e-3);
    let balance_cap = pow2_floor((n / (2 * threads.max(1))).max(1));
    pow2_round(ideal)
        .min(balance_cap)
        .max(min.max(1))
        .min(n.max(1))
}

/// Resolves the configured chunk policy to the concrete, uniform node
/// granularity a Dataflow loop of `n` elements over `(kernel, set_id)`
/// schedules with *right now*:
///
/// * [`ChunkPolicy::Static`] / [`ChunkPolicy::NumChunks`] — probe-free,
///   set directly;
/// * [`ChunkPolicy::Auto`] / [`ChunkPolicy::PersistentAuto`] /
///   [`ChunkPolicy::Guided`] — **feedback-resolved**: a synchronous timing
///   probe has no place in graph construction, so executed nodes record
///   their measured per-element cost into the context's
///   [`GranularityFeedback`] and the *next* submission of the same
///   (kernel, set) resolves the policy's target duration against it. The
///   first submission — no feedback yet — probes at the conservative
///   mini-partition `block_size` default. `Guided` has no target of its
///   own and aims for the default chunk target with its `min` as the
///   granularity floor.
///
/// The same resolution applies to colored (indirect) loops: the resolved
/// granularity is the coloring block size, and the plan cache keys on it.
///
/// Feedback is keyed by `(kernel, set signature)` — *shape*, not entity
/// identity — so a second world running the same solver (a farm tenant)
/// resolves measured granularities from the first world's samples when the
/// two share a feedback table.
fn resolve_granularity(world: &Op2, kernel: &str, set_sig: u64, n: usize) -> usize {
    let cfg = world.config();
    let default_bs = cfg.block_size.max(1);
    let measured = |target_ns: u64, min: usize| -> usize {
        match world.granularity_feedback().cost(kernel, set_sig) {
            None => default_bs,
            Some(c) => feedback_block_size(target_ns, c.ewma_ns_per_elem, n, cfg.threads, min),
        }
    };
    match &cfg.chunk {
        ChunkPolicy::Static { size } => (*size).max(1),
        ChunkPolicy::NumChunks { chunks } => n.div_ceil((*chunks).clamp(1, n.max(1))).max(1),
        ChunkPolicy::Guided { min } => measured(
            hpx_rt::DEFAULT_CHUNK_TARGET.as_nanos() as u64,
            (*min).max(1),
        ),
        ChunkPolicy::Auto { target } => measured(target.as_nanos() as u64, 1),
        ChunkPolicy::PersistentAuto(handle) => {
            let target_ns = handle.target_ns();
            if let Some(c) = world.granularity_feedback().cost(kernel, set_sig) {
                // First kernel with feedback calibrates the shared
                // duration (first-loop-wins): later kernels match this
                // duration with their own sizes (paper Fig 12b). The
                // duration the chunker *aimed for* is locked in — the
                // uncapped ideal, not the first kernel's achievable node
                // duration, so a tiny first set (whose nodes can never
                // reach the target) does not poison every later kernel
                // with a miniature target.
                let ideal = (target_ns as f64 / c.ewma_ns_per_elem.max(1e-3)).max(1.0);
                let aimed_ns = (ideal * c.ewma_ns_per_elem) as u64;
                handle.calibrate_once(aimed_ns.max(1));
            }
            measured(handle.target_ns(), 1)
        }
    }
}

fn dataflow_schedule(world: &Op2, spec: &LoopSpec, n: usize, granularity: usize) -> Schedule {
    let conflicts = conflicts_of(&spec.infos);
    let bs = granularity.max(1);
    if conflicts.is_empty() {
        let nblocks = n.div_ceil(bs);
        return Schedule::Direct {
            block_size: bs,
            blocks: (0..nblocks)
                .map(|b| b * bs..((b + 1) * bs).min(n))
                .collect(),
            round: (0..nblocks).collect(),
        };
    }
    Schedule::Planned(world.plans().get(&spec.set, bs, &conflicts))
}

// ---------------------------------------------------------------------------
// Loop-spec cache
// ---------------------------------------------------------------------------

/// One argument's contribution to a [`SpecKey`]: enough shape to make the
/// cached schedule valid for any loop sharing it.
#[derive(Clone, PartialEq, Eq, Hash)]
enum SigKind {
    Direct,
    Via(u64, usize),
    Global,
}

/// Cache key of a built [`Schedule`]: kernel name, iteration set, argument
/// signature (access mode + direct/indirect/global shape), and the chunk
/// policy *kind*. The **resolved granularity** is deliberately not part of
/// the key — it is stored next to the cached schedule, so a feedback-driven
/// granularity change *re-keys* (invalidates and rebuilds) the entry
/// exactly once instead of accumulating one entry per granularity ever
/// seen.
#[derive(Clone, PartialEq, Eq, Hash)]
struct SpecKey {
    name: Arc<str>,
    set: u64,
    sig: Vec<(Access, SigKind)>,
    chunk: (u8, usize),
}

impl SpecKey {
    fn of(world: &Op2, spec: &LoopSpec) -> SpecKey {
        let sig = spec
            .infos
            .iter()
            .map(|i| {
                let kind = match &i.kind {
                    ArgKind::Direct => SigKind::Direct,
                    ArgKind::Indirect { map, idx } => SigKind::Via(map.signature(), *idx),
                    ArgKind::Global => SigKind::Global,
                };
                (i.access, kind)
            })
            .collect();
        let chunk = match &world.config().chunk {
            ChunkPolicy::Static { size } => (0u8, *size),
            ChunkPolicy::NumChunks { chunks } => (1, *chunks),
            ChunkPolicy::Guided { min } => (2, *min),
            ChunkPolicy::Auto { .. } => (3, 0),
            ChunkPolicy::PersistentAuto(_) => (4, 0),
        };
        SpecKey {
            name: spec.name.clone(),
            set: spec.set.signature(),
            sig,
            chunk: (chunk.0, chunk.1),
        }
    }
}

/// Cache of dataflow [`Schedule`]s, the OP2-style "plan once, execute
/// many" applied to the *whole* loop shape: repeated solver iterations of
/// a named loop reuse the block partition and color rounds without
/// rebuilding or even re-deriving conflicts. Private to one context by
/// default, but key identity is **shape** (kernel name, set/map content
/// signatures, chunk-policy kind), so a cache shared between worlds via
/// [`SpecShare`] hits warm across tenants running the same solver.
///
/// Every cached schedule carries the **resolved node granularity** it was
/// built at. A lookup whose freshly resolved granularity matches is a
/// *hit*; a lookup for an unseen shape is a *miss*; a lookup whose
/// granularity differs — the feedback moved the chunker's decision — is a
/// *re-plan*: the stale schedule is dropped and rebuilt once, so each
/// granularity change costs exactly one rebuild. Hits/misses/re-plans are
/// mirrored in the `op2.spec_cache.{hits,misses,replans}` named counters
/// of [`hpx_rt::stats`].
///
/// Residency is **bounded**: the cache holds at most `capacity` schedules
/// (default [`DEFAULT_SPEC_CAPACITY`]); inserting past it evicts the
/// least-recently-used entry (`op2.spec_cache.evictions`), so a shared
/// pool serving many distinct tenant shapes cannot grow without bound.
/// Entries for a retired set signature are dropped eagerly via
/// [`SpecCache::invalidate_set`] (`op2.spec_cache.invalidations`) — the
/// live-repartition path, where schedules for a migrated-away set must not
/// be reachable once its signature is reused.
pub(crate) struct SpecCache {
    map: Mutex<HashMap<SpecKey, CachedSpec>>,
    hits: AtomicU64,
    replans: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    /// Monotonic recency clock; every hit or insert stamps the entry.
    tick: AtomicU64,
    capacity: std::sync::atomic::AtomicUsize,
}

/// Default bound on resident schedules (see [`SpecCache`]).
pub const DEFAULT_SPEC_CAPACITY: usize = 512;

struct CachedSpec {
    granularity: usize,
    /// Recency stamp (larger = more recently used).
    stamp: u64,
    schedule: Arc<Schedule>,
}

impl Default for SpecCache {
    fn default() -> Self {
        SpecCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            replans: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            capacity: std::sync::atomic::AtomicUsize::new(DEFAULT_SPEC_CAPACITY),
        }
    }
}

impl SpecCache {
    fn touch(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn get(&self, world: &Op2, spec: &LoopSpec, n: usize) -> Arc<Schedule> {
        let granularity = resolve_granularity(world, &spec.name, spec.set.signature(), n);
        let key = SpecKey::of(world, spec);
        match self.map.lock().get_mut(&key) {
            Some(c) if c.granularity == granularity => {
                c.stamp = self.touch();
                self.hits.fetch_add(1, Ordering::Relaxed);
                hpx_rt::static_counter!("op2.spec_cache.hits").fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&c.schedule);
            }
            Some(_) => {
                // Granularity changed: invalidate and rebuild (re-key).
                self.replans.fetch_add(1, Ordering::Relaxed);
                hpx_rt::static_counter!("op2.spec_cache.replans").fetch_add(1, Ordering::Relaxed);
            }
            None => {
                hpx_rt::static_counter!("op2.spec_cache.misses").fetch_add(1, Ordering::Relaxed);
            }
        }
        let built = Arc::new(dataflow_schedule(world, spec, n, granularity));
        // Built outside the lock (plan construction can be expensive);
        // re-check on insert so a concurrent same-shape submission that
        // won the race at this granularity is reused, not overwritten.
        let stamp = self.touch();
        let mut map = self.map.lock();
        let out = match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e)
                if e.get().granularity != granularity =>
            {
                e.insert(CachedSpec {
                    granularity,
                    stamp,
                    schedule: Arc::clone(&built),
                });
                built
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().stamp = stamp;
                Arc::clone(&e.get().schedule)
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(CachedSpec {
                    granularity,
                    stamp,
                    schedule: Arc::clone(&built),
                });
                built
            }
        };
        // Bounded residency: evict the least-recently-used entries. The
        // just-inserted entry carries the freshest stamp, so it is never
        // the victim.
        let cap = self.capacity.load(Ordering::Relaxed).max(1);
        while map.len() > cap {
            let victim = map
                .iter()
                .min_by_key(|(_, c)| c.stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity map");
            map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            hpx_rt::static_counter!("op2.spec_cache.evictions").fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Drops every cached schedule keyed on set signature `set_sig` and
    /// returns how many were removed. Called by the live-repartition path
    /// after migration retires a set, so a stale schedule for the old
    /// signature can never be hit again (a later mesh declaring the same
    /// shape would otherwise reuse a schedule whose plan tables index the
    /// retired entities' block layout).
    pub fn invalidate_set(&self, set_sig: u64) -> usize {
        let mut map = self.map.lock();
        let before = map.len();
        map.retain(|k, _| k.set != set_sig);
        let removed = before - map.len();
        drop(map);
        if removed > 0 {
            self.invalidations
                .fetch_add(removed as u64, Ordering::Relaxed);
            hpx_rt::static_counter!("op2.spec_cache.invalidations")
                .fetch_add(removed as u64, Ordering::Relaxed);
        }
        removed
    }

    /// Bounds resident schedules to `capacity` (≥ 1), evicting LRU entries
    /// immediately if the cache is already over the new bound.
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut map = self.map.lock();
        while map.len() > capacity {
            let victim = map
                .iter()
                .min_by_key(|(_, c)| c.stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity map");
            map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            hpx_rt::static_counter!("op2.spec_cache.evictions").fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn built(&self) -> usize {
        self.map.lock().len()
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn replans(&self) -> u64 {
        self.replans.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

/// A shareable handle to one loop-spec cache (see [`SpecCache`]'s
/// internal docs): clone it into several [`Op2Config`]s via
/// [`Op2Config::with_shared_specs`](crate::Op2Config::with_shared_specs)
/// and every world built from them resolves loop schedules through **one**
/// cache. Because keys are content signatures, not entity ids, a world
/// declaring the same mesh shape as an earlier one hits the earlier
/// world's warm schedules on its very first loop — the cross-tenant warm
/// path of [`crate::farm`].
///
/// The default value (`SpecShare::default()`) is a fresh, empty cache —
/// exactly what a solitary `Op2::new` gets.
#[derive(Clone, Default)]
pub struct SpecShare {
    cache: Arc<SpecCache>,
}

impl SpecShare {
    /// A fresh, empty shared cache with the default residency bound
    /// ([`DEFAULT_SPEC_CAPACITY`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh, empty shared cache holding at most `capacity` schedules
    /// (LRU eviction past the bound; see [`SpecShare::set_capacity`]).
    pub fn with_capacity(capacity: usize) -> Self {
        let share = Self::default();
        share.cache.set_capacity(capacity);
        share
    }

    pub(crate) fn cache(&self) -> &SpecCache {
        &self.cache
    }

    /// Number of distinct loop shapes with a built schedule.
    pub fn built(&self) -> usize {
        self.cache.built()
    }

    /// Lookups served from a cached schedule (across every sharing world).
    pub fn hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Granularity-change invalidations (see
    /// [`Op2::spec_cache_replans`](crate::Op2::spec_cache_replans)).
    pub fn replans(&self) -> u64 {
        self.cache.replans()
    }

    /// Entries dropped by the LRU residency bound.
    pub fn evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Entries dropped because their set signature was invalidated (live
    /// repartition retiring a migrated set).
    pub fn invalidations(&self) -> u64 {
        self.cache.invalidations()
    }

    /// Re-bounds resident schedules to `capacity` (≥ 1), evicting
    /// least-recently-used entries immediately if needed.
    pub fn set_capacity(&self, capacity: usize) {
        self.cache.set_capacity(capacity);
    }
}

impl std::fmt::Debug for SpecShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecShare")
            .field("built", &self.built())
            .field("hits", &self.hits())
            .field("replans", &self.replans())
            .finish()
    }
}

/// The uniform node granularity a Dataflow loop named `kernel` over `set`
/// resolves to under `world`'s configuration and current feedback —
/// exposed so tests can assert the feedback wiring (probe default before
/// the first measurement, measured convergence after) without reaching
/// into the driver.
#[doc(hidden)]
pub fn __dataflow_resolved_block_size(world: &Op2, kernel: &str, set: &Set) -> usize {
    resolve_granularity(world, kernel, set.signature(), set.size())
}

/// The block partition a *direct* dataflow loop named `kernel` over `set`
/// would be scheduled with under `world`'s configuration and current
/// feedback.
#[doc(hidden)]
pub fn __dataflow_direct_blocks(world: &Op2, kernel: &str, set: &Set) -> Vec<Range<usize>> {
    let n = set.size();
    let bs = resolve_granularity(world, kernel, set.signature(), n);
    (0..n.div_ceil(bs))
        .map(|b| b * bs..((b + 1) * bs).min(n))
        .collect()
}

/// What a measuring dataflow node needs to report its execution cost back
/// to the feedback accumulator: the accumulator itself (which carries the
/// clock), the kernel name and the set signature.
struct MeasureCtx {
    feedback: GranularityFeedback,
    name: Arc<str>,
    set: u64,
}

/// Approximate main-memory latency the cross-node look-ahead is sized
/// against: prefetching `latency / per_elem_cost` elements ahead means the
/// line arrives roughly when the kernel reaches it.
const MEM_LATENCY_NS: f64 = 100.0;

/// Cross-node look-ahead bounds, and the static fallback used before any
/// feedback exists for the (kernel, set) — the paper's empirically optimal
/// distance factor for Airfoil (§V, Fig 20).
const GATHER_LOOKAHEAD_DEFAULT: usize = 15;
const GATHER_LOOKAHEAD_MAX: usize = 128;

/// Elements of the *next* node to prefetch while the current node runs:
/// resolved from the granularity feedback's measured per-element cost when
/// available (cheap kernels look further ahead, expensive ones barely need
/// to), the static paper default otherwise.
fn gather_lookahead(world: &Op2, kernel: &str, set_sig: u64) -> usize {
    match world.granularity_feedback().cost(kernel, set_sig) {
        Some(c) => ((MEM_LATENCY_NS / c.ewma_ns_per_elem.max(1e-3)) as usize)
            .clamp(1, GATHER_LOOKAHEAD_MAX),
        None => GATHER_LOOKAHEAD_DEFAULT,
    }
}

fn drive_dataflow(world: &Op2, spec: LoopSpec) -> SharedFuture<()> {
    let rt = world.runtime_arc();
    let stats = world.stats_handle();
    let n = spec.set.size();
    let name = spec.name.clone();
    // First node to execute stamps the start; the finalize node reads it.
    let t0_cell: Arc<OnceLock<Instant>> = Arc::new(OnceLock::new());

    // A measuring policy closes the feedback loop: every node times its
    // body on the feedback clock and records (elements, elapsed), which
    // the *next* submission of this (kernel, set) resolves its granularity
    // from. A rank-tagged world measures regardless of policy — its
    // samples also accumulate the per-rank busy time the rebalancer reads,
    // which must not depend on the chunking strategy.
    let measure: Option<Arc<MeasureCtx>> = (matches!(
        world.config().chunk,
        ChunkPolicy::Auto { .. } | ChunkPolicy::PersistentAuto(_) | ChunkPolicy::Guided { .. }
    ) || world.granularity_feedback().rank().is_some())
    .then(|| {
        Arc::new(MeasureCtx {
            feedback: world.granularity_feedback().clone(),
            name: spec.name.clone(),
            set: spec.set.signature(),
        })
    });

    let schedule = world.specs().get(world, &spec, n);
    let bs = schedule.block_size();
    let (blocks, rounds) = (schedule.blocks(), schedule.rounds());

    // Cross-node gather prefetch: each node, before running its body,
    // warms the cache with the first `lookahead` gathered rows of the
    // block scheduled after it (next in its round, else the next round's
    // first block). The look-ahead comes from the measured per-element
    // cost when the feedback table has one.
    let gather = spec.gather.clone();
    let lookahead = if gather.is_some() {
        gather_lookahead(world, &spec.name, spec.set.signature())
    } else {
        0
    };

    // Build one dataflow node per block, round by round. Collection reads
    // only *predecessor* loops' state (recording happens below, after all
    // nodes exist), so intra-loop ordering is carried solely by the round
    // gates — exactly the conflicts the coloring separated.
    let mut nodes: Vec<(usize, SharedFuture<()>)> = Vec::with_capacity(blocks.len());
    let mut gate: Option<SharedFuture<()>> = None;
    let mut last_round: Vec<SharedFuture<()>> = Vec::new();
    let mut deps_buf: Vec<SharedFuture<()>> = Vec::new();
    for (r, round) in rounds.iter().enumerate() {
        let mut round_futs: Vec<SharedFuture<()>> = Vec::with_capacity(round.len());
        for (i, &b) in round.iter().enumerate() {
            let range = blocks[b].clone();
            let next_gather = gather.as_ref().and_then(|ps| {
                let nb = round
                    .get(i + 1)
                    .copied()
                    .or_else(|| rounds.get(r + 1).and_then(|nr| nr.first().copied()))?;
                Some((Arc::clone(ps), blocks[nb].clone()))
            });
            deps_buf.clear();
            if let Some(g) = &gate {
                deps_buf.push(g.clone());
            }
            let ctx = BlockCtx {
                index: b,
                range: range.clone(),
                block_size: bs,
                gen: spec.gen,
            };
            (spec.collect_block)(&ctx, &mut deps_buf);
            let body = Arc::clone(&spec.block_body);
            let t0c = Arc::clone(&t0_cell);
            let mctx = measure.clone();
            let fut = schedule_after(&rt, &deps_buf, move || {
                t0c.get_or_init(Instant::now);
                if let Some((ps, nr)) = &next_gather {
                    let end = (nr.start + lookahead).min(nr.end);
                    for e in nr.start..end {
                        ps.prefetch(e);
                    }
                }
                match &mctx {
                    None => body(range),
                    Some(m) => {
                        let elems = range.len();
                        let start = m.feedback.clock().now_ns();
                        body(range);
                        let elapsed = m.feedback.clock().now_ns().saturating_sub(start);
                        m.feedback.record(&m.name, m.set, elems, elapsed);
                    }
                }
            });
            round_futs.push(fut.clone());
            nodes.push((b, fut));
        }
        if r + 1 < rounds.len() {
            gate = Some(when_all_shared(&round_futs).share());
        }
        last_round = round_futs;
    }

    // Finalize node: joins the final round (earlier rounds are covered
    // transitively through the gates) plus the loop-level dependencies —
    // e.g. a previous loop's finalize on a shared global, which block
    // nodes deliberately do not wait for (their reduction partials are
    // generation-tagged, so pipelining survives shared globals). An empty
    // set schedules only this node.
    (spec.collect_loop)(&mut last_round);
    let finalize = Arc::clone(&spec.finalize);
    let done = schedule_after(&rt, &last_round, move || {
        let t0 = *t0_cell.get_or_init(Instant::now);
        finalize();
        record_loop_time(&stats, &name, t0.elapsed());
    });

    // Record completions: per block for dat arguments, loop-level (the
    // finalize future) for globals. This runs synchronously before the
    // submitting thread returns, so the next submitted loop sees it.
    for (b, fut) in &nodes {
        let ctx = BlockCtx {
            index: *b,
            range: blocks[*b].clone(),
            block_size: bs,
            gen: spec.gen,
        };
        (spec.record_block)(&ctx, fut);
    }
    (spec.record_loop)(&done);
    done
}

/// A handle to a submitted loop (paper Fig 9: the kernel "returns an
/// output argument as a future").
///
/// Under the dataflow backend the loop may still be running — or not yet
/// started — when the handle is returned; under Seq/ForkJoin it is already
/// complete. Dropping the handle is fine: the context tracks the loop for
/// [`Op2::fence`].
#[derive(Clone, Debug)]
pub struct LoopHandle {
    name: Arc<str>,
    done: SharedFuture<()>,
}

impl LoopHandle {
    pub(crate) fn new(name: Arc<str>, done: SharedFuture<()>) -> Self {
        LoopHandle { name, done }
    }

    /// The loop's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True once the loop has completed.
    pub fn is_done(&self) -> bool {
        self.done.is_ready()
    }

    /// Blocks until the loop completes, re-panicking if the kernel
    /// panicked.
    pub fn wait(&self) {
        self.done.get()
    }

    /// The completion future, usable as an explicit dataflow dependency.
    pub fn future(&self) -> SharedFuture<()> {
        self.done.clone()
    }

    /// Access the plan executed for this loop's shape — exposed for tests
    /// and diagnostics via [`Op2::plan_cache_stats`].
    #[doc(hidden)]
    pub fn __done_for_tests(&self) -> &SharedFuture<()> {
        &self.done
    }
}

/// Fetches the cached plan for a loop shape — used by tests and the
/// benchmark harness to inspect coloring.
pub fn plan_for(world: &Op2, set: &Set, infos: &[ArgInfo]) -> Option<Arc<Plan>> {
    let conflicts = conflicts_of(infos);
    if conflicts.is_empty() {
        return None;
    }
    Some(
        world
            .plans()
            .get(set, world.config().block_size, &conflicts),
    )
}
