//! The loop driver: one entry point, three backends.
//!
//! * **Seq** — reference execution on the calling thread.
//! * **ForkJoin** — the OpenMP-equivalent baseline: synchronous parallel
//!   chunks with a global barrier after every loop and every color round.
//! * **Dataflow** — the paper's design: the loop becomes a chain of
//!   future continuations (one per color round) scheduled when the
//!   arguments' dependency futures resolve; the caller gets the completion
//!   future back immediately (paper Figs 8-11).

use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use hpx_rt::{when_all_shared, ExecutionPolicy, SharedFuture};

use crate::arg::ArgInfo;
use crate::config::Backend;
use crate::plan::{conflicts_of, Plan};
use crate::set::Set;
use crate::world::{record_loop_time, Op2};

/// Everything the driver needs, pre-assembled by the `par_loop*` fronts.
pub(crate) struct LoopSpec {
    pub name: String,
    pub set: Set,
    pub infos: Vec<ArgInfo>,
    pub deps: Vec<SharedFuture<()>>,
    /// Executes the kernel over a contiguous element range and commits
    /// per-chunk state (reduction partials).
    pub block_body: Arc<dyn Fn(Range<usize>) + Send + Sync>,
    /// Runs once after all chunks: merges reductions.
    pub finalize: Arc<dyn Fn() + Send + Sync>,
}

/// Runs (or schedules) the loop; returns its completion future.
pub(crate) fn drive(world: &Op2, spec: LoopSpec) -> SharedFuture<()> {
    match world.config().backend {
        Backend::Seq => drive_sync(world, spec, /*parallel=*/ false),
        Backend::ForkJoin => drive_sync(world, spec, /*parallel=*/ true),
        Backend::Dataflow => drive_dataflow(world, spec),
    }
}

fn policy_of(world: &Op2) -> ExecutionPolicy {
    hpx_rt::par().with_chunk(world.config().chunk.clone())
}

fn drive_sync(world: &Op2, spec: LoopSpec, parallel: bool) -> SharedFuture<()> {
    // Any pending dataflow loops from a mixed-backend context must drain
    // first; under pure Seq/ForkJoin these futures are already ready.
    for d in &spec.deps {
        d.wait();
    }
    let n = spec.set.size();
    let t0 = Instant::now();
    if n > 0 {
        if !parallel {
            (spec.block_body)(0..n);
        } else {
            run_parallel_phases(world, &spec, n);
        }
    }
    (spec.finalize)();
    record_loop_time(&world.stats_handle(), &spec.name, t0.elapsed());
    SharedFuture::ready(())
}

/// The synchronous parallel schedule: direct loops are one chunked
/// parallel-for; indirect loops run color rounds, each ending in an
/// implicit global barrier (the `for_each_chunk` join).
fn run_parallel_phases(world: &Op2, spec: &LoopSpec, n: usize) {
    let rt = world.runtime();
    let policy = policy_of(world);
    let conflicts = conflicts_of(&spec.infos);
    if conflicts.is_empty() {
        hpx_rt::for_each_chunk(rt, &policy, 0..n, |r| (spec.block_body)(r));
        return;
    }
    let plan = world
        .plans()
        .get(&spec.set, world.config().block_size, &conflicts);
    for color_list in &plan.color_blocks {
        hpx_rt::for_each_chunk(rt, &policy, 0..color_list.len(), |br| {
            for bi in br {
                (spec.block_body)(plan.blocks[color_list[bi]].clone());
            }
        });
        // <- implicit global barrier per color round (and per loop): this
        // is precisely the synchronization the dataflow backend removes.
    }
}

fn drive_dataflow(world: &Op2, spec: LoopSpec) -> SharedFuture<()> {
    let rt = world.runtime_arc();
    let stats = world.stats_handle();
    let policy = policy_of(world);
    let n = spec.set.size();
    let name = spec.name.clone();
    let conflicts = conflicts_of(&spec.infos);

    let start = when_all_shared(&spec.deps);

    let done = if conflicts.is_empty() {
        let body = Arc::clone(&spec.block_body);
        let finalize = Arc::clone(&spec.finalize);
        let rt2 = Arc::clone(&rt);
        start.then(&rt, move |()| {
            let t0 = Instant::now();
            if n > 0 {
                hpx_rt::for_each_chunk(&rt2, &policy, 0..n, |r| body(r));
            }
            finalize();
            record_loop_time(&stats, &name, t0.elapsed());
        })
    } else {
        let plan = world
            .plans()
            .get(&spec.set, world.config().block_size, &conflicts);
        let t0_cell: Arc<parking_lot::Mutex<Option<Instant>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let t0c = Arc::clone(&t0_cell);
        let mut fut = start.then_inline(move |()| {
            *t0c.lock() = Some(Instant::now());
        });
        // One continuation per color round; rounds are ordered by the
        // future chain, not by a barrier on the submitting thread.
        for color in 0..plan.ncolors {
            let plan_c = Arc::clone(&plan);
            let body = Arc::clone(&spec.block_body);
            let rt2 = Arc::clone(&rt);
            let policy_c = policy.clone();
            fut = fut.then(&rt, move |()| {
                let blocks: &[usize] = &plan_c.color_blocks[color];
                hpx_rt::for_each_chunk(&rt2, &policy_c, 0..blocks.len(), |br| {
                    for bi in br {
                        body(plan_c.blocks[blocks[bi]].clone());
                    }
                });
            });
        }
        let finalize = Arc::clone(&spec.finalize);
        fut.then_inline(move |()| {
            finalize();
            if let Some(t0) = *t0_cell.lock() {
                record_loop_time(&stats, &name, t0.elapsed());
            }
        })
    };
    done.share()
}

/// A handle to a submitted loop (paper Fig 9: the kernel "returns an
/// output argument as a future").
///
/// Under the dataflow backend the loop may still be running — or not yet
/// started — when the handle is returned; under Seq/ForkJoin it is already
/// complete. Dropping the handle is fine: the context tracks the loop for
/// [`Op2::fence`].
#[derive(Clone, Debug)]
pub struct LoopHandle {
    name: String,
    done: SharedFuture<()>,
}

impl LoopHandle {
    pub(crate) fn new(name: String, done: SharedFuture<()>) -> Self {
        LoopHandle { name, done }
    }

    /// The loop's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True once the loop has completed.
    pub fn is_done(&self) -> bool {
        self.done.is_ready()
    }

    /// Blocks until the loop completes, re-panicking if the kernel
    /// panicked.
    pub fn wait(&self) {
        self.done.get()
    }

    /// The completion future, usable as an explicit dataflow dependency.
    pub fn future(&self) -> SharedFuture<()> {
        self.done.clone()
    }

    /// Access the plan executed for this loop's shape — exposed for tests
    /// and diagnostics via [`Op2::plan_cache_stats`].
    #[doc(hidden)]
    pub fn __done_for_tests(&self) -> &SharedFuture<()> {
        &self.done
    }
}

/// Fetches the cached plan for a loop shape — used by tests and the
/// benchmark harness to inspect coloring.
pub fn plan_for(world: &Op2, set: &Set, infos: &[ArgInfo]) -> Option<Arc<Plan>> {
    let conflicts = conflicts_of(infos);
    if conflicts.is_empty() {
        return None;
    }
    Some(world.plans().get(set, world.config().block_size, &conflicts))
}
