//! Debug-build diagnostics.

/// Asserts that no two mutable views of one kernel invocation alias the
/// same dat row — e.g. `res_calc` incrementing both cells of an edge must
/// see two *different* cells. Violations are mesh bugs (degenerate
/// elements) that would otherwise be undefined behaviour.
#[inline]
pub fn check_mut_overlap(targets: &[Option<(u64, usize)>], elem: usize) {
    for i in 0..targets.len() {
        let Some(a) = targets[i] else { continue };
        for b in targets.iter().skip(i + 1).flatten() {
            assert!(
                a != *b,
                "aliasing mutable arguments: element {elem} reaches dat {} row {} through two \
                 mutable arguments (degenerate mesh entity?)",
                a.0,
                a.1
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_targets_pass() {
        check_mut_overlap(&[Some((1, 0)), Some((1, 1)), None, Some((2, 0))], 7);
    }

    #[test]
    #[should_panic(expected = "aliasing mutable arguments")]
    fn overlapping_targets_panic() {
        check_mut_overlap(&[Some((1, 3)), None, Some((1, 3))], 9);
    }

    #[test]
    fn same_row_different_dat_is_fine() {
        check_mut_overlap(&[Some((1, 3)), Some((2, 3))], 0);
    }
}
