//! Loop arguments (`op_arg_dat` / `op_arg_gbl`, paper §II-A and Fig 7).
//!
//! An argument couples a [`Dat`] (or [`Global`]) with an access descriptor
//! and, for indirect access, a [`Map`] slot. Access is encoded in the
//! *type* (the [`AccessTag`] parameter) so the kernel receives `&[T]` for
//! `OP_READ` and `&mut [T]` otherwise — the Rust equivalent of OP2's
//! access-mode-checked argument marshalling.

use std::ops::Range;
use std::sync::Arc;

use hpx_rt::{PrefetchSet, SharedFuture};

use crate::dat::{Dat, Layout};
use crate::gbl::{Global, Reducible};
use crate::map::Map;
use crate::set::Set;
use crate::types::{Access, OpType};

/// Context of one dataflow node — one block of the loop's mini-partition —
/// during per-block dependency collection and completion recording.
///
/// Direct arguments resolve `range` against their dat's dependency blocks;
/// indirect arguments translate `index` through the map's block-reach
/// table (see [`crate::plan`]) to the target blocks the node touches.
#[derive(Clone, Debug)]
pub struct BlockCtx {
    /// Index of the block in the loop's block partition
    /// (`range.start / block_size`).
    pub index: usize,
    /// Iteration-set elements covered by the block.
    pub range: Range<usize>,
    /// The loop's mini-partition block size.
    pub block_size: usize,
    /// Loop-generation stamp: all nodes of one loop share it, so a block's
    /// epoch table can tell sibling nodes (writer set accumulates) from a
    /// newer loop (writer set is superseded).
    pub gen: u64,
}

/// Shape of an argument, used for planning and dependency analysis.
#[derive(Clone, Debug)]
pub struct ArgInfo {
    /// Declared access mode.
    pub access: Access,
    /// Direct, indirect-through-a-map, or global.
    pub kind: ArgKind,
}

/// See [`ArgInfo`].
#[derive(Clone, Debug)]
pub enum ArgKind {
    /// The argument indexes the iteration set directly (`OP_ID`).
    Direct,
    /// The argument indexes through `map` slot `idx`.
    Indirect {
        /// The mapping used for the indirection.
        map: Map,
        /// Which of the map's `dim` slots.
        idx: usize,
    },
    /// A global (reduction or broadcast) argument.
    Global,
}

/// One argument of a parallel loop.
///
/// # Safety
///
/// Implementations must return views that are valid for the lifetime of the
/// borrow and must only alias as permitted by the access mode: `Read` views
/// may alias anything read-only; mutable views must target rows that the
/// executor guarantees exclusive (direct partitioning, plan coloring, or
/// task-local buffers).
pub unsafe trait ArgSpec: Clone + Send + Sync + 'static {
    /// What the kernel receives per element: `&[T]` or `&mut [T]`.
    type View<'e>
    where
        Self: 'e;
    /// Per-chunk scratch (reduction buffers; `()` for dat args).
    type TaskLocal: Send + 'static;

    /// Validates the argument against the loop's iteration set.
    fn check_against(&self, iter_set: &Set, loop_name: &str);
    /// Creates the per-chunk scratch.
    fn task_local(&self) -> Self::TaskLocal;
    /// Builds the kernel view for element `elem`.
    ///
    /// # Safety
    ///
    /// Caller must be a loop executor upholding the plan/coloring
    /// discipline (see [`crate::dat`] safety model).
    unsafe fn view<'e>(&'e self, elem: usize, tl: &'e mut Self::TaskLocal) -> Self::View<'e>;
    /// Writes staged per-element state back after the kernel ran — the
    /// dual of [`ArgSpec::view`] for arguments whose mutable view is a
    /// task-local staging buffer rather than a slice of the underlying
    /// storage (an SoA dat's rows are strided across component planes, so
    /// the contiguous kernel view is staged). No-op for AoS and read-only
    /// arguments.
    ///
    /// # Safety
    ///
    /// Same contract as [`ArgSpec::view`]: the caller must be a loop
    /// executor upholding the plan/coloring discipline, invoking this with
    /// the same `elem` whose view the kernel just mutated.
    unsafe fn writeback(&self, elem: usize, tl: &mut Self::TaskLocal) {
        let _ = (elem, tl);
    }
    /// Commits per-chunk scratch (keyed by the owning loop's generation
    /// and the chunk's start element, so pipelined loops' partials never
    /// mix).
    fn commit(&self, gen: u64, chunk_start: usize, tl: Self::TaskLocal);
    /// Runs once after all chunks of loop generation `gen` completed.
    fn finalize(&self, gen: u64);
    /// Shape for planning.
    fn info(&self) -> ArgInfo;
    /// Whole-dat dependency futures this argument must wait for
    /// (sequential / fork-join backends).
    fn collect_deps(&self, out: &mut Vec<SharedFuture<()>>);
    /// Records the loop's completion future against every dependency block
    /// (sequential / fork-join backends).
    fn record_completion(&self, gen: u64, done: &SharedFuture<()>);
    /// Dependency futures one *block node* must wait for (dataflow
    /// backend): only the predecessor futures covering the dependency
    /// blocks this node actually touches.
    fn collect_block_deps(&self, ctx: &BlockCtx, out: &mut Vec<SharedFuture<()>>);
    /// Dependency futures the loop's *finalize node* must wait for beyond
    /// its own blocks (dataflow backend): loop-level state such as a
    /// previous reduction's finalize. Block nodes stay free of these
    /// edges, so reductions do not re-introduce whole-loop barriers.
    fn collect_loop_deps(&self, out: &mut Vec<SharedFuture<()>>);
    /// Records a block node's completion against the dependency blocks it
    /// touches (dataflow backend).
    fn record_block_completion(&self, ctx: &BlockCtx, done: &SharedFuture<()>);
    /// Records the whole loop's completion for state that is loop-level by
    /// nature (global reductions); a no-op for dat arguments, whose
    /// granularity is the block (dataflow backend).
    fn record_loop_completion(&self, done: &SharedFuture<()>);
    /// Panics if a conflicting user guard is live.
    fn assert_borrowable(&self);
    /// Registers containers for the prefetching iterator (§V). Indirect
    /// dat rows are gathered through the map, so only the map table itself
    /// is registered for them.
    fn add_prefetch(&self, set: &mut PrefetchSet);
    /// For the debug aliasing check: `(dat id, target row)` when this
    /// argument yields a mutable view into shared storage.
    fn mut_target(&self, elem: usize) -> Option<(u64, usize)>;
    /// Implicit-communication pre-submission hook: an argument that *reads*
    /// a halo-linked dat through a halo-capable map schedules the refresh
    /// of every stale, reachable import (see the dirty-bit protocol in
    /// [`crate::locality`]). Runs before the loop's dependency graph is
    /// built, so the exchange nodes become ordinary predecessors of its
    /// boundary blocks. Default: no-op.
    fn halo_refresh(&self) {}
    /// Implicit-communication pre-submission hook: a *mutating* argument on
    /// a halo-linked dat marks that rank's exported halos stale. Called
    /// after [`ArgSpec::halo_refresh`] ran for all of the loop's
    /// arguments. Default: no-op.
    fn halo_mark_dirty(&self) {}
}

// ---------------------------------------------------------------------------
// Dat arguments
// ---------------------------------------------------------------------------

/// Type-level access mode of a [`DatArg`].
pub trait AccessTag: Send + Sync + 'static {
    /// The runtime access descriptor.
    const ACCESS: Access;
}

/// `OP_READ` marker.
pub struct ReadTag;
/// `OP_WRITE` marker.
pub struct WriteTag;
/// `OP_RW` marker.
pub struct RwTag;
/// `OP_INC` marker.
pub struct IncTag;

impl AccessTag for ReadTag {
    const ACCESS: Access = Access::Read;
}
impl AccessTag for WriteTag {
    const ACCESS: Access = Access::Write;
}
impl AccessTag for RwTag {
    const ACCESS: Access = Access::Rw;
}
impl AccessTag for IncTag {
    const ACCESS: Access = Access::Inc;
}

/// A dat argument with access mode `A` (see module docs). Construct with
/// [`arg_read`], [`arg_inc_via`], etc.
pub struct DatArg<T: OpType, A: AccessTag> {
    dat: Dat<T>,
    map: Option<(Map, usize)>,
    /// Per-loop memo of the map's block-reach table, keyed by the loop
    /// block size it was resolved for: saves a map-cache lookup on every
    /// node of the loop (thousands for large sets). A stale key (the arg
    /// reused under a different block size) falls back to the map cache.
    reach: std::sync::OnceLock<(usize, Arc<crate::plan::BlockReach>)>,
    _access: std::marker::PhantomData<A>,
}

impl<T: OpType, A: AccessTag> Clone for DatArg<T, A> {
    fn clone(&self) -> Self {
        DatArg {
            dat: self.dat.clone(),
            map: self.map.clone(),
            reach: self.reach.clone(),
            _access: std::marker::PhantomData,
        }
    }
}

impl<T: OpType, A: AccessTag> DatArg<T, A> {
    fn new(dat: &Dat<T>, map: Option<(&Map, usize)>) -> Self {
        if let Some((m, idx)) = map {
            assert!(
                idx < m.dim(),
                "arg on dat '{}': map slot {idx} out of range for map '{}' (dim {})",
                dat.name(),
                m.name(),
                m.dim()
            );
            assert!(
                m.to_set().same(dat.set()),
                "arg on dat '{}': map '{}' targets set '{}', dat lives on set '{}'",
                dat.name(),
                m.name(),
                m.to_set().name(),
                dat.set().name()
            );
            assert!(
                m.target_rows() <= dat.total_rows(),
                "arg on dat '{}': map '{}' addresses {} rows (incl. halo) but the dat stores {}",
                dat.name(),
                m.name(),
                m.target_rows(),
                dat.total_rows()
            );
        }
        DatArg {
            dat: dat.clone(),
            map: map.map(|(m, i)| (m.clone(), i)),
            reach: std::sync::OnceLock::new(),
            _access: std::marker::PhantomData,
        }
    }

    /// The block-reach table of this (indirect) argument for the given
    /// loop block size, memoized on the argument itself.
    fn reach_for(&self, m: &Map, slot: usize, block_size: usize) -> Arc<crate::plan::BlockReach> {
        let (bs, reach) = self.reach.get_or_init(|| {
            (
                block_size,
                m.block_reach(slot, block_size, self.dat.dep_block_size()),
            )
        });
        if *bs == block_size {
            Arc::clone(reach)
        } else {
            m.block_reach(slot, block_size, self.dat.dep_block_size())
        }
    }

    /// Target row for iteration element `e`.
    #[inline(always)]
    fn target(&self, e: usize) -> usize {
        match &self.map {
            None => e,
            Some((m, i)) => m.at(e, *i),
        }
    }

    fn check_impl(&self, iter_set: &Set, loop_name: &str) {
        match &self.map {
            None => assert!(
                self.dat.set().same(iter_set),
                "loop '{loop_name}': direct arg on dat '{}' (set '{}') does not match iteration set '{}'",
                self.dat.name(),
                self.dat.set().name(),
                iter_set.name()
            ),
            Some((m, _)) => assert!(
                m.from_set().same(iter_set),
                "loop '{loop_name}': map '{}' maps from set '{}', not from iteration set '{}'",
                m.name(),
                m.from_set().name(),
                iter_set.name()
            ),
        }
    }

    fn info_impl(&self) -> ArgInfo {
        ArgInfo {
            access: A::ACCESS,
            kind: match &self.map {
                None => ArgKind::Direct,
                Some((m, i)) => ArgKind::Indirect {
                    map: m.clone(),
                    idx: *i,
                },
            },
        }
    }

    /// Per-block dependency collection shared by every access mode: a
    /// direct argument touches exactly the dat blocks under its element
    /// range; an indirect one touches the target blocks its map reaches
    /// from this source block.
    fn collect_block_deps_impl(
        &self,
        mutates: bool,
        ctx: &BlockCtx,
        out: &mut Vec<SharedFuture<()>>,
    ) {
        match &self.map {
            None => self.dat.deps().collect_rows(&ctx.range, mutates, out),
            Some((m, slot)) => {
                let reach = self.reach_for(m, *slot, ctx.block_size);
                if let Some(targets) = reach.get(ctx.index) {
                    for &t in targets {
                        self.dat.deps().collect_block(t as usize, mutates, out);
                    }
                }
            }
        }
    }

    /// Per-block completion recording, dual of
    /// [`DatArg::collect_block_deps_impl`].
    fn record_block_impl(&self, mutates: bool, ctx: &BlockCtx, done: &SharedFuture<()>) {
        match &self.map {
            None => self
                .dat
                .deps()
                .record_rows(&ctx.range, mutates, ctx.gen, done),
            Some((m, slot)) => {
                let reach = self.reach_for(m, *slot, ctx.block_size);
                if let Some(targets) = reach.get(ctx.index) {
                    for &t in targets {
                        self.dat
                            .deps()
                            .record_block(t as usize, mutates, ctx.gen, done);
                    }
                }
            }
        }
    }

    /// Shared implicit-communication trigger: only an *indirect* argument
    /// through a halo-capable map can observe halo mirror rows (loops
    /// iterate the owned prefix, so direct arguments never reach them).
    /// Under a distributed transport the halo-capability cut is dropped:
    /// whether *this* rank's map reaches its halo says nothing about the
    /// peer's, and both sides must fire at the same program points (SPMD
    /// symmetry — see [`crate::locality`]); the ring resolves stale
    /// exports there.
    fn halo_refresh_impl(&self) {
        if let Some((m, slot)) = &self.map {
            if let Some((rank, ring)) = self.dat.halo_ring() {
                if m.halo_targets() > 0 || ring.spmd_mode() {
                    ring.refresh_for_read(*rank, m, *slot);
                }
            }
        }
    }

    /// Shared implicit-communication trigger: any mutation makes the owned
    /// rows (the authoritative copies) newer than the peers' mirrors.
    fn halo_mark_dirty_impl(&self) {
        if let Some((rank, ring)) = self.dat.halo_ring() {
            ring.mark_exports_dirty(*rank);
        }
    }

    fn add_prefetch_impl(&self, set: &mut PrefetchSet) {
        // Direct (linear-stride) accesses are deliberately *not*
        // registered: modern hardware stride prefetchers already saturate
        // them, and per-iteration software prefetch code only bloats the
        // hot loop (measured in EXPERIMENTS.md; the paper's 2016 testbed
        // behaved differently — hpx-rt's `for_each_prefetch` still offers
        // linear prefetching for the Fig 19/20 experiments).
        //
        // Indirect accesses are the real payoff: read the map entry for
        // iteration i+d (cheap, sequential) and prefetch the gathered dat
        // row, which no hardware prefetcher can predict. The map's index
        // Vec outlives the loop because the argument (cloned into the
        // block body) keeps the Map alive.
        if let Some((m, idx)) = &self.map {
            // SAFETY(clippy): address computation only.
            let base = unsafe { self.dat.ptr() }.cast_const().cast::<u8>();
            match self.dat.layout() {
                Layout::AoS => set.add_gather_raw(
                    m.indices(),
                    m.dim(),
                    *idx,
                    base,
                    self.dat.dim() * std::mem::size_of::<T>(),
                    self.dat.set().size(),
                ),
                // A gathered SoA row spans `dim` planes a full stride
                // apart: one entry per plane, each with a scalar-sized
                // "row", so every touched cache line is covered.
                Layout::SoA => {
                    let plane_bytes = self.dat.component_stride() * std::mem::size_of::<T>();
                    for c in 0..self.dat.dim() {
                        set.add_gather_raw(
                            m.indices(),
                            m.dim(),
                            *idx,
                            // SAFETY(clippy): address computation only.
                            unsafe { base.add(c * plane_bytes) },
                            std::mem::size_of::<T>(),
                            self.dat.set().size(),
                        );
                    }
                }
            }
        }
    }
}

macro_rules! impl_dat_arg {
    // $tag: the access tag; $view: view type; $mut_target: expression
    (read) => {
        // SAFETY: Read views are shared references; aliasing is harmless.
        // An SoA view points into the per-chunk staging buffer instead.
        unsafe impl<T: OpType> ArgSpec for DatArg<T, ReadTag> {
            type View<'e> = &'e [T];
            type TaskLocal = Vec<T>;

            fn check_against(&self, iter_set: &Set, loop_name: &str) {
                self.check_impl(iter_set, loop_name);
            }
            fn task_local(&self) -> Vec<T> {
                match self.dat.layout() {
                    Layout::AoS => Vec::new(),
                    Layout::SoA => Vec::with_capacity(self.dat.dim()),
                }
            }
            #[inline(always)]
            unsafe fn view<'e>(&'e self, elem: usize, tl: &'e mut Vec<T>) -> &'e [T] {
                let t = self.target(elem);
                let dim = self.dat.dim();
                match self.dat.layout() {
                    // SAFETY: executor discipline (module docs); row in
                    // bounds by map/dat construction.
                    Layout::AoS => unsafe {
                        std::slice::from_raw_parts(self.dat.ptr().add(t * dim), dim)
                    },
                    // The row is strided one plane apart: stage it so the
                    // kernel keeps its contiguous `&[T]` signature.
                    Layout::SoA => {
                        let stride = self.dat.component_stride();
                        // SAFETY: as above; pushes stay within the
                        // capacity reserved in `task_local`.
                        unsafe {
                            let base = self.dat.ptr();
                            tl.clear();
                            for c in 0..dim {
                                tl.push(*base.add(c * stride + t));
                            }
                            std::slice::from_raw_parts(tl.as_ptr(), dim)
                        }
                    }
                }
            }
            fn commit(&self, _gen: u64, _chunk_start: usize, _tl: Vec<T>) {}
            fn finalize(&self, _gen: u64) {}
            fn info(&self) -> ArgInfo {
                self.info_impl()
            }
            fn collect_deps(&self, out: &mut Vec<SharedFuture<()>>) {
                self.dat.collect_deps(false, out);
            }
            fn record_completion(&self, gen: u64, done: &SharedFuture<()>) {
                self.dat.record_completion(false, gen, done);
            }
            fn collect_block_deps(&self, ctx: &BlockCtx, out: &mut Vec<SharedFuture<()>>) {
                self.collect_block_deps_impl(false, ctx, out);
            }
            fn collect_loop_deps(&self, _out: &mut Vec<SharedFuture<()>>) {}
            fn record_block_completion(&self, ctx: &BlockCtx, done: &SharedFuture<()>) {
                self.record_block_impl(false, ctx, done);
            }
            fn record_loop_completion(&self, _done: &SharedFuture<()>) {}
            fn assert_borrowable(&self) {
                self.dat.assert_borrowable(false);
            }
            fn add_prefetch(&self, set: &mut PrefetchSet) {
                self.add_prefetch_impl(set);
            }
            fn mut_target(&self, _elem: usize) -> Option<(u64, usize)> {
                None
            }
            fn halo_refresh(&self) {
                self.halo_refresh_impl();
            }
        }
    };
    (mut $tag:ty) => {
        // SAFETY: mutable views are made exclusive by the executor: direct
        // args are partitioned by element, indirect ones serialized by
        // plan coloring; the debug aliasing check guards within-element
        // overlap. An SoA view is a staged copy of the strided row,
        // scattered back by `writeback` under the same exclusivity.
        unsafe impl<T: OpType> ArgSpec for DatArg<T, $tag> {
            type View<'e> = &'e mut [T];
            type TaskLocal = Vec<T>;

            fn check_against(&self, iter_set: &Set, loop_name: &str) {
                self.check_impl(iter_set, loop_name);
            }
            fn task_local(&self) -> Vec<T> {
                match self.dat.layout() {
                    Layout::AoS => Vec::new(),
                    Layout::SoA => Vec::with_capacity(self.dat.dim()),
                }
            }
            #[inline(always)]
            unsafe fn view<'e>(&'e self, elem: usize, tl: &'e mut Vec<T>) -> &'e mut [T] {
                let t = self.target(elem);
                let dim = self.dat.dim();
                match self.dat.layout() {
                    // SAFETY: exclusivity per the impl-level comment.
                    Layout::AoS => unsafe {
                        std::slice::from_raw_parts_mut(self.dat.ptr().add(t * dim), dim)
                    },
                    // Stage the strided row (OP_RW/OP_INC read their
                    // current target; OP_WRITE harmlessly sees stale
                    // values it must overwrite anyway); `writeback`
                    // scatters the kernel's result to the planes.
                    Layout::SoA => {
                        let stride = self.dat.component_stride();
                        // SAFETY: as above; pushes stay within the
                        // capacity reserved in `task_local`.
                        unsafe {
                            let base = self.dat.ptr();
                            tl.clear();
                            for c in 0..dim {
                                tl.push(*base.add(c * stride + t));
                            }
                            std::slice::from_raw_parts_mut(tl.as_mut_ptr(), dim)
                        }
                    }
                }
            }
            #[inline(always)]
            unsafe fn writeback(&self, elem: usize, tl: &mut Vec<T>) {
                if self.dat.layout() == Layout::SoA {
                    let t = self.target(elem);
                    let stride = self.dat.component_stride();
                    // SAFETY: exclusivity per the impl-level comment; the
                    // executor passes the elem whose view was just staged.
                    unsafe {
                        let base = self.dat.ptr();
                        for (c, &v) in tl.iter().enumerate() {
                            *base.add(c * stride + t) = v;
                        }
                    }
                }
            }
            fn commit(&self, _gen: u64, _chunk_start: usize, _tl: Vec<T>) {}
            fn finalize(&self, _gen: u64) {}
            fn info(&self) -> ArgInfo {
                self.info_impl()
            }
            fn collect_deps(&self, out: &mut Vec<SharedFuture<()>>) {
                self.dat.collect_deps(true, out);
            }
            fn record_completion(&self, gen: u64, done: &SharedFuture<()>) {
                self.dat.record_completion(true, gen, done);
            }
            fn collect_block_deps(&self, ctx: &BlockCtx, out: &mut Vec<SharedFuture<()>>) {
                self.collect_block_deps_impl(true, ctx, out);
            }
            fn collect_loop_deps(&self, _out: &mut Vec<SharedFuture<()>>) {}
            fn record_block_completion(&self, ctx: &BlockCtx, done: &SharedFuture<()>) {
                self.record_block_impl(true, ctx, done);
            }
            fn record_loop_completion(&self, _done: &SharedFuture<()>) {}
            fn assert_borrowable(&self) {
                self.dat.assert_borrowable(true);
            }
            fn add_prefetch(&self, set: &mut PrefetchSet) {
                self.add_prefetch_impl(set);
            }
            fn mut_target(&self, elem: usize) -> Option<(u64, usize)> {
                Some((self.dat.id(), self.target(elem)))
            }
            fn halo_refresh(&self) {
                // OP_RW reads before writing; OP_WRITE and OP_INC never
                // read their target, so they need no fresh halo (boundary
                // increments are covered by exec-halo redundant compute).
                if <$tag as AccessTag>::ACCESS == Access::Rw {
                    self.halo_refresh_impl();
                }
            }
            fn halo_mark_dirty(&self) {
                self.halo_mark_dirty_impl();
            }
        }
    };
}

impl_dat_arg!(read);
impl_dat_arg!(mut WriteTag);
impl_dat_arg!(mut RwTag);
impl_dat_arg!(mut IncTag);

// ---------------------------------------------------------------------------
// Global arguments
// ---------------------------------------------------------------------------

/// Increment (reduction) argument on a [`Global`]; the kernel receives a
/// `&mut [T]` accumulation buffer that is task-local and merged
/// deterministically after the loop.
pub struct GblIncArg<T: Reducible> {
    gbl: Global<T>,
}

impl<T: Reducible> Clone for GblIncArg<T> {
    fn clone(&self) -> Self {
        GblIncArg {
            gbl: self.gbl.clone(),
        }
    }
}

// SAFETY: views point into the per-chunk task-local buffer — never shared.
unsafe impl<T: Reducible> ArgSpec for GblIncArg<T> {
    type View<'e> = &'e mut [T];
    type TaskLocal = Vec<T>;

    fn check_against(&self, _iter_set: &Set, _loop_name: &str) {}
    fn task_local(&self) -> Vec<T> {
        self.gbl.task_local()
    }
    #[inline(always)]
    unsafe fn view<'e>(&'e self, _elem: usize, tl: &'e mut Vec<T>) -> &'e mut [T] {
        tl.as_mut_slice()
    }
    fn commit(&self, gen: u64, chunk_start: usize, tl: Vec<T>) {
        self.gbl.commit(gen, chunk_start, tl);
    }
    fn finalize(&self, gen: u64) {
        self.gbl.finalize(gen);
    }
    fn info(&self) -> ArgInfo {
        ArgInfo {
            access: Access::Inc,
            kind: ArgKind::Global,
        }
    }
    fn collect_deps(&self, out: &mut Vec<SharedFuture<()>>) {
        // Serialize loops incrementing the same global: their partial
        // buffers and finalize steps must not interleave. Every
        // outstanding incrementing loop counts, not just the latest.
        self.gbl.collect_pending(out);
    }
    fn record_completion(&self, _gen: u64, done: &SharedFuture<()>) {
        self.gbl.record_completion(done);
    }
    fn collect_block_deps(&self, _ctx: &BlockCtx, _out: &mut Vec<SharedFuture<()>>) {
        // Block nodes only accumulate generation-tagged task-local
        // partials — they never touch the global's value or another
        // generation's partials, so they carry no dependency and the loop
        // pipelines even when consecutive loops share a global.
    }
    fn collect_loop_deps(&self, out: &mut Vec<SharedFuture<()>>) {
        // The finalize-to-finalize edge: merging into the value waits for
        // every *registered* incrementing loop's finalize. A loop whose
        // submission races this one on another thread may register after
        // this collection — the two finalizes are then unordered, which is
        // safe (each merges its own generation atomically under the value
        // lock) but leaves the merge *order* unspecified; see the
        // concurrent-submitter note on [`Global`].
        self.gbl.collect_pending(out);
    }
    fn record_block_completion(&self, _ctx: &BlockCtx, _done: &SharedFuture<()>) {}
    fn record_loop_completion(&self, done: &SharedFuture<()>) {
        self.gbl.record_completion(done);
    }
    fn assert_borrowable(&self) {}
    fn add_prefetch(&self, _set: &mut PrefetchSet) {}
    fn mut_target(&self, _elem: usize) -> Option<(u64, usize)> {
        None
    }
}

/// Read-only (broadcast) argument on a [`Global`]; the kernel receives
/// `&[T]` of the current value.
pub struct GblReadArg<T: Reducible> {
    gbl: Global<T>,
}

impl<T: Reducible> Clone for GblReadArg<T> {
    fn clone(&self) -> Self {
        GblReadArg {
            gbl: self.gbl.clone(),
        }
    }
}

// SAFETY: read-only view of a buffer whose writers are ordered before this
// loop via the pending future collected in `collect_deps`.
unsafe impl<T: Reducible> ArgSpec for GblReadArg<T> {
    type View<'e> = &'e [T];
    type TaskLocal = ();

    fn check_against(&self, _iter_set: &Set, _loop_name: &str) {}
    fn task_local(&self) {}
    #[inline(always)]
    unsafe fn view<'e>(&'e self, _elem: usize, _tl: &'e mut ()) -> &'e [T] {
        // SAFETY: the value vector is never resized; writers are ordered
        // before this loop by `collect_deps`.
        unsafe { std::slice::from_raw_parts(self.gbl.raw_value_ptr(), self.gbl.dim()) }
    }
    fn commit(&self, _gen: u64, _chunk_start: usize, _tl: ()) {}
    fn finalize(&self, _gen: u64) {}
    fn info(&self) -> ArgInfo {
        ArgInfo {
            access: Access::Read,
            kind: ArgKind::Global,
        }
    }
    fn collect_deps(&self, out: &mut Vec<SharedFuture<()>>) {
        self.gbl.collect_pending(out);
    }
    fn record_completion(&self, _gen: u64, _done: &SharedFuture<()>) {}
    fn collect_block_deps(&self, _ctx: &BlockCtx, out: &mut Vec<SharedFuture<()>>) {
        // A broadcast read samples the value inside the kernel, so every
        // block node must wait for every pending reduction's finalize.
        self.gbl.collect_pending(out);
    }
    fn collect_loop_deps(&self, _out: &mut Vec<SharedFuture<()>>) {}
    fn record_block_completion(&self, _ctx: &BlockCtx, _done: &SharedFuture<()>) {}
    fn record_loop_completion(&self, _done: &SharedFuture<()>) {}
    fn assert_borrowable(&self) {}
    fn add_prefetch(&self, _set: &mut PrefetchSet) {}
    fn mut_target(&self, _elem: usize) -> Option<(u64, usize)> {
        None
    }
}

// ---------------------------------------------------------------------------
// Constructors (the `op_arg_dat` / `op_arg_gbl` surface)
// ---------------------------------------------------------------------------

/// Direct `OP_READ` argument.
pub fn arg_read<T: OpType>(dat: &Dat<T>) -> DatArg<T, ReadTag> {
    DatArg::new(dat, None)
}

/// Direct `OP_WRITE` argument.
pub fn arg_write<T: OpType>(dat: &Dat<T>) -> DatArg<T, WriteTag> {
    DatArg::new(dat, None)
}

/// Direct `OP_RW` argument.
pub fn arg_rw<T: OpType>(dat: &Dat<T>) -> DatArg<T, RwTag> {
    DatArg::new(dat, None)
}

/// Direct `OP_INC` argument.
pub fn arg_inc<T: OpType>(dat: &Dat<T>) -> DatArg<T, IncTag> {
    DatArg::new(dat, None)
}

/// Indirect `OP_READ` argument through `map` slot `idx`.
pub fn arg_read_via<T: OpType>(dat: &Dat<T>, map: &Map, idx: usize) -> DatArg<T, ReadTag> {
    DatArg::new(dat, Some((map, idx)))
}

/// Indirect `OP_WRITE` argument through `map` slot `idx`.
pub fn arg_write_via<T: OpType>(dat: &Dat<T>, map: &Map, idx: usize) -> DatArg<T, WriteTag> {
    DatArg::new(dat, Some((map, idx)))
}

/// Indirect `OP_RW` argument through `map` slot `idx`.
pub fn arg_rw_via<T: OpType>(dat: &Dat<T>, map: &Map, idx: usize) -> DatArg<T, RwTag> {
    DatArg::new(dat, Some((map, idx)))
}

/// Indirect `OP_INC` argument through `map` slot `idx` — the access that
/// requires plan coloring (paper §II-A: "increment to avoid race
/// conditions due to indirect data access").
pub fn arg_inc_via<T: OpType>(dat: &Dat<T>, map: &Map, idx: usize) -> DatArg<T, IncTag> {
    DatArg::new(dat, Some((map, idx)))
}

/// Global reduction argument (`op_arg_gbl(…, OP_INC)`), e.g. Airfoil's
/// `rms` residual.
pub fn arg_gbl_inc<T: Reducible>(gbl: &Global<T>) -> GblIncArg<T> {
    GblIncArg { gbl: gbl.clone() }
}

/// Global broadcast argument (`op_arg_gbl(…, OP_READ)`).
pub fn arg_gbl_read<T: Reducible>(gbl: &Global<T>) -> GblReadArg<T> {
    GblReadArg { gbl: gbl.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "map slot 2 out of range")]
    fn rejects_bad_map_slot() {
        let edges = Set::new(2, "edges");
        let nodes = Set::new(2, "nodes");
        let m = Map::new(&edges, &nodes, 2, vec![0, 1, 1, 0], "pedge");
        let d = Dat::new(&nodes, 1, "x", vec![0.0f64; 2]);
        let _ = arg_read_via(&d, &m, 2);
    }

    #[test]
    #[should_panic(expected = "targets set")]
    fn rejects_map_to_wrong_set() {
        let edges = Set::new(2, "edges");
        let nodes = Set::new(2, "nodes");
        let cells = Set::new(2, "cells");
        let m = Map::new(&edges, &nodes, 1, vec![0, 1], "pedge");
        let d = Dat::new(&cells, 1, "q", vec![0.0f64; 2]);
        let _ = arg_inc_via(&d, &m, 0);
    }

    #[test]
    fn info_reports_kind_and_access() {
        let cells = Set::new(3, "cells");
        let d = Dat::new(&cells, 2, "q", vec![0.0f64; 6]);
        let info = ArgSpec::info(&arg_write(&d));
        assert_eq!(info.access, Access::Write);
        assert!(matches!(info.kind, ArgKind::Direct));
    }

    #[test]
    fn mut_target_reports_row() {
        let edges = Set::new(2, "edges");
        let cells = Set::new(3, "cells");
        let m = Map::new(&edges, &cells, 2, vec![0, 1, 1, 2], "ecell");
        let d = Dat::new(&cells, 1, "res", vec![0.0f64; 3]);
        let a = arg_inc_via(&d, &m, 1);
        assert_eq!(a.mut_target(0), Some((d.id(), 1)));
        assert_eq!(a.mut_target(1), Some((d.id(), 2)));
        let r = arg_read_via(&d, &m, 0);
        assert_eq!(ArgSpec::mut_target(&r, 0), None);
    }
}
