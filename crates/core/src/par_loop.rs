//! The parallel-loop surface (paper §II-B / §IV): one arity-free builder.
//!
//! [`Op2::loop_`] opens a [`ParLoop`] builder; each [`ParLoop::arg`] call
//! appends one access-described argument (growing the argument tuple in
//! the builder's *type*, so the kernel signature stays fully checked); and
//! [`ParLoop::run`] submits the loop:
//!
//! ```
//! use op2_core::args::{read, write};
//! use op2_core::{Op2, Op2Config};
//!
//! let op2 = Op2::new(Op2Config::dataflow(2));
//! let cells = op2.decl_set(100, "cells");
//! let q = op2.decl_dat(&cells, 1, "q", vec![1.0f64; 100]);
//! let qold = op2.decl_dat(&cells, 1, "qold", vec![0.0f64; 100]);
//! op2.loop_("save_soln", &cells)
//!     .arg(read(&q))
//!     .arg(write(&qold))
//!     .run(|q: &[f64], qold: &mut [f64]| qold.copy_from_slice(q))
//!     .wait();
//! assert_eq!(qold.snapshot(), vec![1.0; 100]);
//! ```
//!
//! The kernel receives `&[T]` for reads and `&mut [T]` for writes and
//! increments — the code the OP2 translator would generate by hand,
//! expressed once per arity *internally* (the macro below) but behind a
//! single user-visible entry point. The [`par_loop!`] macro offers the
//! same surface in one expression. (The pre-v2 `par_loop1..par_loop10`
//! free functions are gone; the builder is the only loop surface.)
//!
//! Under the [`Dataflow`](crate::Backend::Dataflow) backend `run` returns
//! immediately; the returned [`LoopHandle`] wraps the loop's completion
//! future, and the arguments' dats remember it so later loops depending on
//! the same data chain automatically (loop interleaving, paper Figs 9-11).
//! Submission also drives the implicit-communication hooks: arguments
//! reading stale halo imports of a [`crate::locality::link_halo`]-linked
//! dat schedule their refresh exchanges first, and mutating arguments mark
//! the dat's exported halos stale (see [`crate::locality`]).

use std::ops::Range;
use std::sync::Arc;

use hpx_rt::{PrefetchSet, SharedFuture};

use crate::arg::{ArgSpec, BlockCtx};
use crate::config::Backend;
use crate::driver::{drive, LoopHandle, LoopSpec};
use crate::set::Set;
use crate::types::next_loop_gen;
use crate::world::Op2;

/// An in-construction parallel loop: the iteration set, the kernel name
/// (diagnostics + plan/spec caching) and the argument tuple accumulated so
/// far in the type parameter. See the module docs.
#[must_use = "a ParLoop does nothing until .run(kernel) is called"]
pub struct ParLoop<'w, Args> {
    world: &'w Op2,
    name: Arc<str>,
    set: Set,
    args: Args,
}

impl Op2 {
    /// Opens the arity-free loop builder over `set`; `name` identifies the
    /// kernel for diagnostics, per-loop statistics and the loop-spec
    /// cache. (Named `loop_` because `loop` is a Rust keyword.)
    pub fn loop_(&self, name: &str, set: &Set) -> ParLoop<'_, ()> {
        ParLoop {
            world: self,
            name: Arc::from(name),
            set: set.clone(),
            args: (),
        }
    }
}

/// Generates `ParLoop::arg` for one accumulated arity (tuple of the given
/// type/value idents → tuple with one more argument appended).
macro_rules! builder_step {
    ( $(($A:ident, $a:ident)),* ) => {
        impl<'w, $($A: ArgSpec),*> ParLoop<'w, ($($A,)*)> {
            /// Appends one access-described argument (`op_arg_dat` /
            /// `op_arg_gbl`); the kernel later receives one view per
            /// argument, in append order.
            pub fn arg<Next: ArgSpec>(self, arg: Next) -> ParLoop<'w, ($($A,)* Next,)> {
                let ($($a,)*) = self.args;
                ParLoop {
                    world: self.world,
                    name: self.name,
                    set: self.set,
                    args: ($($a,)* arg,),
                }
            }
        }
    };
}

builder_step!();
builder_step!((A0, a0));
builder_step!((A0, a0), (A1, a1));
builder_step!((A0, a0), (A1, a1), (A2, a2));
builder_step!((A0, a0), (A1, a1), (A2, a2), (A3, a3));
builder_step!((A0, a0), (A1, a1), (A2, a2), (A3, a3), (A4, a4));
builder_step!((A0, a0), (A1, a1), (A2, a2), (A3, a3), (A4, a4), (A5, a5));
builder_step!(
    (A0, a0),
    (A1, a1),
    (A2, a2),
    (A3, a3),
    (A4, a4),
    (A5, a5),
    (A6, a6)
);
builder_step!(
    (A0, a0),
    (A1, a1),
    (A2, a2),
    (A3, a3),
    (A4, a4),
    (A5, a5),
    (A6, a6),
    (A7, a7)
);
builder_step!(
    (A0, a0),
    (A1, a1),
    (A2, a2),
    (A3, a3),
    (A4, a4),
    (A5, a5),
    (A6, a6),
    (A7, a7),
    (A8, a8)
);

/// Submits the loop described by `op2.loop_(name, set)` plus the given
/// argument expressions in one expression — sugar over the [`ParLoop`]
/// builder with the same type checking:
///
/// ```
/// use op2_core::args::{read, write};
/// use op2_core::{par_loop, Op2, Op2Config};
///
/// let op2 = Op2::new(Op2Config::seq());
/// let cells = op2.decl_set(4, "cells");
/// let a = op2.decl_dat(&cells, 1, "a", vec![2.0f64; 4]);
/// let b = op2.decl_dat(&cells, 1, "b", vec![0.0f64; 4]);
/// par_loop!(op2, "copy", &cells, [read(&a), write(&b)],
///     |a: &[f64], b: &mut [f64]| b[0] = a[0])
/// .wait();
/// assert_eq!(b.snapshot(), vec![2.0; 4]);
/// ```
#[macro_export]
macro_rules! par_loop {
    ($op2:expr, $name:expr, $set:expr, [$($arg:expr),+ $(,)?], $kernel:expr $(,)?) => {
        $op2.loop_($name, $set)$(.arg($arg))+.run($kernel)
    };
}

macro_rules! gen_par_loop {
    ( $( $A:ident / $a:ident / $idx:tt ),+ ) => {
        impl<'w, $($A: ArgSpec,)+> ParLoop<'w, ($($A,)+)> {
            /// Submits the loop, applying `kernel` to every element of the
            /// iteration set with the accumulated arguments' views; see
            /// the module docs.
            pub fn run<K>(self, kernel: K) -> LoopHandle
            where
                K: for<'e> Fn($(<$A as ArgSpec>::View<'e>),+) + Send + Sync + 'static,
            {
                let ParLoop { world, name, set, args } = self;
                let ($($a,)+) = args;
                $(
                    $a.check_against(&set, &name);
                    $a.assert_borrowable();
                )+
                // Implicit communication (see `crate::locality`): reads of
                // stale halo imports schedule their refresh exchanges
                // before the loop's dependency graph is built (so boundary
                // blocks gate on the receives); mutations then mark the
                // exported halos stale for later consumers.
                $( $a.halo_refresh(); )+
                $( $a.halo_mark_dirty(); )+
                let infos = vec![$( ArgSpec::info(&$a) ),+];
                let gen = next_loop_gen();
                let is_dataflow = world.config().backend == Backend::Dataflow;

                // Whole-loop dependency collection for the synchronous
                // backends only: the dataflow driver collects per block
                // (and a whole-dat collection here would drain the
                // per-block write-after-read state it needs).
                let mut deps = Vec::new();
                if !is_dataflow {
                    $( $a.collect_deps(&mut deps); )+
                }

                // Prefetching iterator tables (paper §V): registered once
                // per loop launch, consulted every iteration. Loops with
                // nothing useful to prefetch (no indirect args) carry no
                // prefetch code at all.
                let prefetch: Option<(PrefetchSet, usize)> = world
                    .config()
                    .prefetch_distance
                    .and_then(|factor| {
                        let mut ps = PrefetchSet::new();
                        $( $a.add_prefetch(&mut ps); )+
                        // Gather distance is in iteration elements: factor
                        // edges of look-ahead (the gathered rows have no
                        // meaningful cache-line stride to scale by).
                        if ps.is_empty() {
                            None
                        } else {
                            Some((ps, factor))
                        }
                    });

                // Cross-node gather prefetch (dataflow backend): the driver
                // issues prefetches for the *next* node's gathered rows
                // while the current node executes, at a look-ahead distance
                // resolved from the granularity feedback's measured
                // per-element cost (see `driver::drive_dataflow`). Only
                // loops with indirect arguments register anything.
                let gather_prefetch: Option<Arc<PrefetchSet>> = is_dataflow
                    .then(|| {
                        let mut ps = PrefetchSet::new();
                        $( $a.add_prefetch(&mut ps); )+
                        ps
                    })
                    .filter(|ps| !ps.is_empty())
                    .map(Arc::new);

                let finalize_args = ($( $a.clone(), )+);
                // Only the backend that will call a hook pays for its
                // argument clones and closure allocation.
                let record_args = (!is_dataflow).then(|| ($( $a.clone(), )+));
                let collect_block_args = is_dataflow.then(|| ($( $a.clone(), )+));
                let record_block_args = is_dataflow.then(|| ($( $a.clone(), )+));
                let record_loop_args = is_dataflow.then(|| ($( $a.clone(), )+));
                let collect_loop_args = is_dataflow.then(|| ($( $a.clone(), )+));

                let block_body: Arc<dyn Fn(Range<usize>) + Send + Sync> =
                    Arc::new(move |r: Range<usize>| {
                        let mut tls = ($( $a.task_local(), )+);
                        // The prefetch branch is hoisted out of the element
                        // loop so the common (no-prefetch) path stays tight.
                        match &prefetch {
                            None => {
                                for e in r.clone() {
                                    #[cfg(debug_assertions)]
                                    {
                                        let targets = [$( $a.mut_target(e) ),+];
                                        crate::diag::check_mut_overlap(&targets, e);
                                    }
                                    // SAFETY: the driver guarantees the
                                    // executor discipline in `crate::dat`.
                                    unsafe {
                                        kernel($( $a.view(e, &mut tls.$idx) ),+);
                                        $( $a.writeback(e, &mut tls.$idx); )+
                                    }
                                }
                            }
                            Some((ps, d)) => {
                                for e in r.clone() {
                                    ps.prefetch(e + *d);
                                    #[cfg(debug_assertions)]
                                    {
                                        let targets = [$( $a.mut_target(e) ),+];
                                        crate::diag::check_mut_overlap(&targets, e);
                                    }
                                    // SAFETY: as above.
                                    unsafe {
                                        kernel($( $a.view(e, &mut tls.$idx) ),+);
                                        $( $a.writeback(e, &mut tls.$idx); )+
                                    }
                                }
                            }
                        }
                        $( $a.commit(gen, r.start, tls.$idx); )+
                    });

                let finalize: Arc<dyn Fn() + Send + Sync> = {
                    let ($($a,)+) = finalize_args;
                    Arc::new(move || {
                        $( $a.finalize(gen); )+
                    })
                };

                // Per-block dependency hooks for the dataflow driver: one
                // dataflow node per block, wired only to the dependency
                // blocks its arguments actually touch. The synchronous
                // backends get inert hooks (the driver never calls them
                // there).
                let collect_block: Arc<dyn Fn(&BlockCtx, &mut Vec<SharedFuture<()>>) + Send + Sync> =
                    match collect_block_args {
                        Some(($($a,)+)) => Arc::new(move |ctx, out| {
                            $( $a.collect_block_deps(ctx, out); )+
                        }),
                        None => Arc::new(|_, _| {}),
                    };
                let record_block: Arc<dyn Fn(&BlockCtx, &SharedFuture<()>) + Send + Sync> =
                    match record_block_args {
                        Some(($($a,)+)) => Arc::new(move |ctx, done| {
                            $( $a.record_block_completion(ctx, done); )+
                        }),
                        None => Arc::new(|_, _| {}),
                    };
                let record_loop: Arc<dyn Fn(&SharedFuture<()>) + Send + Sync> =
                    match record_loop_args {
                        Some(($($a,)+)) => Arc::new(move |done| {
                            $( $a.record_loop_completion(done); )+
                        }),
                        None => Arc::new(|_| {}),
                    };
                let collect_loop: Arc<dyn Fn(&mut Vec<SharedFuture<()>>) + Send + Sync> =
                    match collect_loop_args {
                        Some(($($a,)+)) => Arc::new(move |out| {
                            $( $a.collect_loop_deps(out); )+
                        }),
                        None => Arc::new(|_| {}),
                    };

                let spec = LoopSpec {
                    name: name.clone(),
                    set,
                    infos,
                    deps,
                    gen,
                    block_body,
                    gather: gather_prefetch,
                    finalize,
                    collect_block,
                    collect_loop,
                    record_block,
                    record_loop,
                };
                let done = drive(world, spec);
                if let Some(($($a,)+)) = record_args {
                    // Whole-loop recording for the synchronous backends;
                    // the dataflow driver records per block at
                    // graph-build time.
                    $( $a.record_completion(gen, &done); )+
                }
                world.track(done.clone());
                LoopHandle::new(name, done)
            }
        }
    };
}

gen_par_loop!(A0 / a0 / 0);
gen_par_loop!(A0 / a0 / 0, A1 / a1 / 1);
gen_par_loop!(A0 / a0 / 0, A1 / a1 / 1, A2 / a2 / 2);
gen_par_loop!(A0 / a0 / 0, A1 / a1 / 1, A2 / a2 / 2, A3 / a3 / 3);
gen_par_loop!(
    A0 / a0 / 0,
    A1 / a1 / 1,
    A2 / a2 / 2,
    A3 / a3 / 3,
    A4 / a4 / 4
);
gen_par_loop!(
    A0 / a0 / 0,
    A1 / a1 / 1,
    A2 / a2 / 2,
    A3 / a3 / 3,
    A4 / a4 / 4,
    A5 / a5 / 5
);
gen_par_loop!(
    A0 / a0 / 0,
    A1 / a1 / 1,
    A2 / a2 / 2,
    A3 / a3 / 3,
    A4 / a4 / 4,
    A5 / a5 / 5,
    A6 / a6 / 6
);
gen_par_loop!(
    A0 / a0 / 0,
    A1 / a1 / 1,
    A2 / a2 / 2,
    A3 / a3 / 3,
    A4 / a4 / 4,
    A5 / a5 / 5,
    A6 / a6 / 6,
    A7 / a7 / 7
);
gen_par_loop!(
    A0 / a0 / 0,
    A1 / a1 / 1,
    A2 / a2 / 2,
    A3 / a3 / 3,
    A4 / a4 / 4,
    A5 / a5 / 5,
    A6 / a6 / 6,
    A7 / a7 / 7,
    A8 / a8 / 8
);
gen_par_loop!(
    A0 / a0 / 0,
    A1 / a1 / 1,
    A2 / a2 / 2,
    A3 / a3 / 3,
    A4 / a4 / 4,
    A5 / a5 / 5,
    A6 / a6 / 6,
    A7 / a7 / 7,
    A8 / a8 / 8,
    A9 / a9 / 9
);

#[cfg(test)]
mod tests {
    use crate::arg::{arg_gbl_inc, arg_inc_via, arg_read, arg_read_via, arg_rw, arg_write};
    use crate::config::{Backend, Op2Config};
    use crate::gbl::Global;
    use crate::types::Access;
    use crate::world::Op2;

    fn each_backend() -> Vec<Op2> {
        vec![
            Op2::new(Op2Config::seq()),
            Op2::new(Op2Config::fork_join(2)),
            Op2::new(Op2Config::dataflow(2)),
        ]
    }

    #[test]
    fn direct_copy_loop_all_backends() {
        for op2 in each_backend() {
            let cells = op2.decl_set(1000, "cells");
            let q = op2.decl_dat(&cells, 4, "q", (0..4000).map(|i| i as f64).collect());
            let qold = op2.decl_dat(&cells, 4, "qold", vec![0.0f64; 4000]);
            let h = op2
                .loop_("save_soln", &cells)
                .arg(arg_read(&q))
                .arg(arg_write(&qold))
                .run(|q: &[f64], qold: &mut [f64]| {
                    qold.copy_from_slice(q);
                });
            h.wait();
            assert_eq!(qold.snapshot(), q.snapshot(), "{:?}", op2.config().backend);
        }
    }

    /// A ring mesh: edge e connects nodes (e, e+1 mod n). Each edge
    /// increments both endpoints by 1 -> every node ends at 2.
    #[test]
    fn indirect_increment_needs_coloring_and_is_correct() {
        for op2 in each_backend() {
            let n = 10_000;
            let edges = op2.decl_set(n, "edges");
            let nodes = op2.decl_set(n, "nodes");
            let mut idx = Vec::with_capacity(2 * n);
            for e in 0..n {
                idx.push(e as u32);
                idx.push(((e + 1) % n) as u32);
            }
            let pedge = op2.decl_map(&edges, &nodes, 2, idx, "pedge");
            let acc = op2.decl_dat(&nodes, 1, "acc", vec![0.0f64; n]);
            let h = op2
                .loop_("ring_inc", &edges)
                .arg(arg_inc_via(&acc, &pedge, 0))
                .arg(arg_inc_via(&acc, &pedge, 1))
                .run(|a: &mut [f64], b: &mut [f64]| {
                    a[0] += 1.0;
                    b[0] += 1.0;
                });
            h.wait();
            let snap = acc.snapshot();
            assert!(
                snap.iter().all(|&v| v == 2.0),
                "{:?}: wrong increment result",
                op2.config().backend
            );
            if op2.config().backend != Backend::Seq {
                let (built, _) = op2.plan_cache_stats();
                assert_eq!(built, 1, "indirect loop must build a plan");
            }
        }
    }

    #[test]
    fn gbl_reduction_matches_closed_form() {
        for op2 in each_backend() {
            let cells = op2.decl_set(5000, "cells");
            let vals = op2.decl_dat(&cells, 1, "v", (0..5000).map(|i| i as f64).collect());
            let total = Global::<f64>::sum(1, "total");
            let h = crate::par_loop!(
                op2,
                "sum",
                &cells,
                [arg_read(&vals), arg_gbl_inc(&total)],
                |v: &[f64], acc: &mut [f64]| {
                    acc[0] += v[0];
                }
            );
            h.wait();
            assert_eq!(total.get_scalar(), 4999.0 * 5000.0 / 2.0);
        }
    }

    #[test]
    fn dataflow_chains_dependent_loops() {
        let op2 = Op2::new(Op2Config::dataflow(2));
        let cells = op2.decl_set(2000, "cells");
        let a = op2.decl_dat(&cells, 1, "a", vec![1.0f64; 2000]);
        let b = op2.decl_dat(&cells, 1, "b", vec![0.0f64; 2000]);
        // b = a * 2; then a = b + 1  (WAR + RAW chain), repeated.
        for _ in 0..10 {
            op2.loop_("double", &cells)
                .arg(arg_read(&a))
                .arg(arg_write(&b))
                .run(|a: &[f64], b: &mut [f64]| b[0] = a[0] * 2.0);
            op2.loop_("incr", &cells)
                .arg(arg_read(&b))
                .arg(arg_write(&a))
                .run(|b: &[f64], a: &mut [f64]| a[0] = b[0] + 1.0);
        }
        op2.fence();
        // x -> 2x+1 applied 10 times from 1.0: x_{k+1} = 2 x_k + 1 -> 2^10*1 + (2^10 - 1) = 2047.
        assert!(a.snapshot().iter().all(|&v| v == 2047.0));
        let stats = op2.loop_stats();
        assert_eq!(stats.iter().map(|(_, s)| s.invocations).sum::<u64>(), 20);
        // Identical (name, set, signature, chunk) submissions hit the
        // loop-spec cache after the first build of each shape — except
        // where real-clock feedback moved the resolved granularity in
        // between, which re-plans instead (the default policy measures).
        let (built, hits) = op2.spec_cache_stats();
        assert_eq!(built, 2, "one live schedule per loop shape");
        assert_eq!(
            hits + op2.spec_cache_replans(),
            18,
            "9 re-submissions per shape"
        );
    }

    #[test]
    fn independent_loops_can_interleave_without_fence() {
        let op2 = Op2::new(Op2Config::dataflow(2));
        let cells = op2.decl_set(5000, "cells");
        let x = op2.decl_dat(&cells, 1, "x", vec![1.0f64; 5000]);
        let y = op2.decl_dat(&cells, 1, "y", vec![2.0f64; 5000]);
        let hx = op2
            .loop_("scale_x", &cells)
            .arg(arg_rw(&x))
            .run(|x: &mut [f64]| {
                x[0] *= 3.0;
            });
        let hy = op2
            .loop_("scale_y", &cells)
            .arg(arg_rw(&y))
            .run(|y: &mut [f64]| {
                y[0] *= 5.0;
            });
        hx.wait();
        hy.wait();
        assert!(x.snapshot().iter().all(|&v| v == 3.0));
        assert!(y.snapshot().iter().all(|&v| v == 10.0));
    }

    #[test]
    #[should_panic(expected = "kernel blew up")]
    fn kernel_panic_propagates_through_wait() {
        let op2 = Op2::new(Op2Config::dataflow(2));
        let cells = op2.decl_set(100, "cells");
        let x = op2.decl_dat(&cells, 1, "x", vec![0.0f64; 100]);
        let h = op2
            .loop_("boom", &cells)
            .arg(arg_write(&x))
            .run(|_x: &mut [f64]| {
                panic!("kernel blew up");
            });
        h.wait();
    }

    #[test]
    #[should_panic(expected = "mutable loop argument while a user guard is live")]
    fn live_guard_blocks_mutable_submission() {
        let op2 = Op2::new(Op2Config::dataflow(2));
        let cells = op2.decl_set(10, "cells");
        let x = op2.decl_dat(&cells, 1, "x", vec![0.0f64; 10]);
        let _guard = x.read();
        let _ = op2
            .loop_("w", &cells)
            .arg(arg_write(&x))
            .run(|_: &mut [f64]| {});
    }

    #[test]
    fn empty_set_loop_completes() {
        for op2 in each_backend() {
            let empty = op2.decl_set(0, "empty");
            let x = op2.decl_dat(&empty, 1, "x", Vec::<f64>::new());
            let g = Global::<f64>::sum(1, "g");
            let h = op2
                .loop_("noop", &empty)
                .arg(arg_write(&x))
                .arg(arg_gbl_inc(&g))
                .run(|_: &mut [f64], _: &mut [f64]| unreachable!());
            h.wait();
            assert_eq!(g.get_scalar(), 0.0);
        }
    }

    #[test]
    fn indirect_read_does_not_force_colors() {
        let op2 = Op2::new(Op2Config::fork_join(2));
        let edges = op2.decl_set(100, "edges");
        let nodes = op2.decl_set(101, "nodes");
        let mut idx = Vec::new();
        for e in 0..100u32 {
            idx.push(e);
            idx.push(e + 1);
        }
        let m = op2.decl_map(&edges, &nodes, 2, idx, "pedge");
        let xn = op2.decl_dat(&nodes, 1, "xn", (0..101).map(|i| i as f64).collect());
        let xe = op2.decl_dat(&edges, 1, "xe", vec![0.0f64; 100]);
        let h = op2
            .loop_("gather", &edges)
            .arg(arg_read_via(&xn, &m, 0))
            .arg(arg_read_via(&xn, &m, 1))
            .arg(arg_write(&xe))
            .run(|a: &[f64], b: &[f64], out: &mut [f64]| out[0] = 0.5 * (a[0] + b[0]));
        h.wait();
        let (built, _) = op2.plan_cache_stats();
        assert_eq!(built, 0, "gather loops are direct for planning purposes");
        let snap = xe.snapshot();
        assert_eq!(snap[10], 10.5);
        let _ = Access::Read; // silence unused import in cfg permutations
    }
}
