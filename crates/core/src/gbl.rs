//! Globals: loop-carried scalars with reduction semantics
//! (`op_arg_gbl` — e.g. the Airfoil residual `rms`).

use parking_lot::Mutex;
use std::sync::Arc;

use hpx_rt::SharedFuture;

use crate::types::OpType;

/// The supported reduction operators for `OP_INC`-style global arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum (`OP_INC`).
    Sum,
    /// Minimum (`OP_MIN`).
    Min,
    /// Maximum (`OP_MAX`).
    Max,
}

/// Scalars usable in global reductions.
pub trait Reducible: OpType + PartialOrd {
    /// The identity element of `op`.
    fn identity(op: ReduceOp) -> Self;
    /// `a ⊕ b` under `op`.
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_reducible_float {
    ($($t:ty),+) => {$(
        impl Reducible for $t {
            fn identity(op: ReduceOp) -> Self {
                match op {
                    ReduceOp::Sum => 0.0,
                    ReduceOp::Min => <$t>::INFINITY,
                    ReduceOp::Max => <$t>::NEG_INFINITY,
                }
            }
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Min => if b < a { b } else { a },
                    ReduceOp::Max => if b > a { b } else { a },
                }
            }
        }
    )+};
}
impl_reducible_float!(f32, f64);

macro_rules! impl_reducible_int {
    ($($t:ty),+) => {$(
        impl Reducible for $t {
            fn identity(op: ReduceOp) -> Self {
                match op {
                    ReduceOp::Sum => 0,
                    ReduceOp::Min => <$t>::MAX,
                    ReduceOp::Max => <$t>::MIN,
                }
            }
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                }
            }
        }
    )+};
}
impl_reducible_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub(crate) struct GlobalInner<T> {
    pub dim: usize,
    pub op: ReduceOp,
    pub name: String,
    value: Mutex<Vec<T>>,
    /// Per-loop partials keyed by (loop generation, chunk start), merged
    /// deterministically per generation. The generation tag lets a
    /// successor loop's block nodes commit concurrently with the
    /// predecessor's finalize (block-granular pipelining): finalize only
    /// drains its own generation's entries.
    partials: Mutex<Vec<(u64, usize, Vec<T>)>>,
    /// Completion of the most recent loop that increments this global.
    pending: Mutex<Option<SharedFuture<()>>>,
}

/// A global value of `dim` scalars participating in reductions. Cheap to
/// clone; clones alias the same state.
///
/// Protocol per loop iterationstep (matching OP2's `op_arg_gbl`): call
/// [`Global::reset`], run the loop with [`crate::arg_gbl_inc`], then
/// [`Global::get`] — which, under the dataflow backend, waits for the
/// loop's completion future.
pub struct Global<T: Reducible> {
    inner: Arc<GlobalInner<T>>,
}

impl<T: Reducible> Clone for Global<T> {
    fn clone(&self) -> Self {
        Global {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Reducible> Global<T> {
    /// A new global of `dim` scalars reduced with `op`, initialized to the
    /// identity.
    pub fn new(dim: usize, op: ReduceOp, name: &str) -> Self {
        assert!(dim > 0, "global '{name}': dim must be positive");
        Global {
            inner: Arc::new(GlobalInner {
                dim,
                op,
                name: name.to_owned(),
                value: Mutex::new([T::identity(op)].repeat(dim)),
                partials: Mutex::new(Vec::new()),
                pending: Mutex::new(None),
            }),
        }
    }

    /// Sum-reduction global (the common `OP_INC` case).
    pub fn sum(dim: usize, name: &str) -> Self {
        Self::new(dim, ReduceOp::Sum, name)
    }

    /// Scalars per element.
    pub fn dim(&self) -> usize {
        self.inner.dim
    }

    /// Declared name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Resets the value to the reduction identity (waits for a pending
    /// loop first so an in-flight reduction is not clobbered).
    pub fn reset(&self) {
        self.wait_pending();
        let mut v = self.inner.value.lock();
        v.iter_mut().for_each(|x| *x = T::identity(self.inner.op));
        self.inner.partials.lock().clear();
    }

    /// Overwrites the value (waits for a pending loop first).
    pub fn set(&self, values: &[T]) {
        assert_eq!(
            values.len(),
            self.inner.dim,
            "global '{}': dim mismatch",
            self.inner.name
        );
        self.wait_pending();
        self.inner.value.lock().copy_from_slice(values);
    }

    /// Waits for the latest incrementing loop (if any), then returns the
    /// reduced value.
    pub fn get(&self) -> Vec<T> {
        self.wait_pending();
        self.inner.value.lock().clone()
    }

    /// Scalar convenience for `dim == 1` globals.
    pub fn get_scalar(&self) -> T {
        self.get()[0]
    }

    fn wait_pending(&self) {
        let p = self.inner.pending.lock().clone();
        if let Some(p) = p {
            p.wait();
        }
    }

    // ---- executor protocol ----------------------------------------------

    /// A fresh accumulation buffer (identity-filled).
    pub(crate) fn task_local(&self) -> Vec<T> {
        [T::identity(self.inner.op)].repeat(self.inner.dim)
    }

    /// Commits one chunk's partial, keyed by the owning loop's generation
    /// and the chunk start for deterministic merging.
    pub(crate) fn commit(&self, gen: u64, chunk_start: usize, partial: Vec<T>) {
        self.inner.partials.lock().push((gen, chunk_start, partial));
    }

    /// Merges generation `gen`'s partials into the value in chunk order
    /// (so float reductions are reproducible for a fixed chunk plan).
    /// Other generations' entries — a pipelined successor's partials
    /// committed early — are left untouched for their own finalize.
    pub(crate) fn finalize(&self, gen: u64) {
        let mut mine = Vec::new();
        {
            let mut partials = self.inner.partials.lock();
            let mut i = 0;
            while i < partials.len() {
                if partials[i].0 == gen {
                    mine.push(partials.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        mine.sort_unstable_by_key(|(_, s, _)| *s);
        let mut value = self.inner.value.lock();
        for (_, _, p) in mine {
            for (v, x) in value.iter_mut().zip(p) {
                *v = T::combine(self.inner.op, *v, x);
            }
        }
    }

    /// Records the owning loop's completion future.
    pub(crate) fn record_completion(&self, done: &SharedFuture<()>) {
        *self.inner.pending.lock() = Some(done.clone());
    }

    /// The completion future of the latest incrementing loop, if any.
    pub(crate) fn pending_future(&self) -> Option<SharedFuture<()>> {
        self.inner.pending.lock().clone()
    }

    /// Current value snapshot without waiting (internal; used by read args
    /// whose ordering is enforced through `pending`).
    pub(crate) fn raw_value_ptr(&self) -> *const T {
        self.inner.value.lock().as_ptr()
    }
}

impl<T: Reducible> std::fmt::Debug for Global<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Global")
            .field("name", &self.inner.name)
            .field("dim", &self.inner.dim)
            .field("op", &self.inner.op)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_reduction_merges_in_chunk_order() {
        let g = Global::<f64>::sum(1, "rms");
        g.commit(7, 100, vec![2.0]);
        g.commit(7, 0, vec![1.0]);
        g.commit(7, 200, vec![3.0]);
        g.finalize(7);
        assert_eq!(g.get_scalar(), 6.0);
    }

    #[test]
    fn reset_restores_identity() {
        let g = Global::<f64>::sum(2, "r");
        g.commit(1, 0, vec![1.0, 2.0]);
        g.finalize(1);
        assert_eq!(g.get(), vec![1.0, 2.0]);
        g.reset();
        assert_eq!(g.get(), vec![0.0, 0.0]);
    }

    #[test]
    fn finalize_only_drains_its_own_generation() {
        // A pipelined successor loop (gen 2) may commit partials before
        // the predecessor (gen 1) finalizes; gen 1's finalize must not
        // steal them.
        let g = Global::<f64>::sum(1, "rms");
        g.commit(1, 0, vec![1.0]);
        g.commit(2, 0, vec![10.0]);
        g.finalize(1);
        assert_eq!(g.get_scalar(), 1.0);
        g.finalize(2);
        assert_eq!(g.get_scalar(), 11.0);
    }

    #[test]
    fn min_max_identities() {
        assert_eq!(f64::identity(ReduceOp::Min), f64::INFINITY);
        assert_eq!(i32::identity(ReduceOp::Max), i32::MIN);
        assert_eq!(f64::combine(ReduceOp::Min, 1.0, -2.0), -2.0);
        assert_eq!(u32::combine(ReduceOp::Max, 1, 7), 7);
    }

    #[test]
    fn set_and_get() {
        let g = Global::<i64>::new(3, ReduceOp::Sum, "v");
        g.set(&[1, 2, 3]);
        assert_eq!(g.get(), vec![1, 2, 3]);
    }
}
