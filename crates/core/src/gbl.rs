//! Globals: loop-carried scalars with reduction semantics
//! (`op_arg_gbl` — e.g. the Airfoil residual `rms`).

use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use hpx_rt::{schedule_after, Runtime, SharedFuture};

use crate::types::OpType;
use crate::world::{CommHooks, Op2};

/// The supported reduction operators for `OP_INC`-style global arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum (`OP_INC`).
    Sum,
    /// Minimum (`OP_MIN`).
    Min,
    /// Maximum (`OP_MAX`).
    Max,
}

/// Scalars usable in global reductions.
pub trait Reducible: OpType + PartialOrd {
    /// The identity element of `op`.
    fn identity(op: ReduceOp) -> Self;
    /// `a ⊕ b` under `op`.
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_reducible_float {
    ($($t:ty),+) => {$(
        impl Reducible for $t {
            fn identity(op: ReduceOp) -> Self {
                match op {
                    ReduceOp::Sum => 0.0,
                    ReduceOp::Min => <$t>::INFINITY,
                    ReduceOp::Max => <$t>::NEG_INFINITY,
                }
            }
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Min => if b < a { b } else { a },
                    ReduceOp::Max => if b > a { b } else { a },
                }
            }
        }
    )+};
}
impl_reducible_float!(f32, f64);

macro_rules! impl_reducible_int {
    ($($t:ty),+) => {$(
        impl Reducible for $t {
            fn identity(op: ReduceOp) -> Self {
                match op {
                    ReduceOp::Sum => 0,
                    ReduceOp::Min => <$t>::MAX,
                    ReduceOp::Max => <$t>::MIN,
                }
            }
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                }
            }
        }
    )+};
}
impl_reducible_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub(crate) struct GlobalInner<T> {
    pub dim: usize,
    pub op: ReduceOp,
    pub name: String,
    value: Mutex<Vec<T>>,
    /// Per-loop partials keyed by (loop generation, chunk start), merged
    /// deterministically per generation. The generation tag lets a
    /// successor loop's block nodes commit concurrently with the
    /// predecessor's finalize (block-granular pipelining): finalize only
    /// drains its own generation's entries.
    partials: Mutex<Vec<(u64, usize, Vec<T>)>>,
    /// Completion futures of **every** outstanding loop that increments
    /// this global — a drained wait-set, not a single slot. Two loops
    /// submitted concurrently (e.g. on sibling ranks of a
    /// [`crate::locality::LocalityGroup`] sharing one `Global`) both
    /// register here; readers wait the whole set, so no finalize can be
    /// missed. Asynchronous snapshot nodes ([`Global::reduce_async`] /
    /// the allreduce contributions) register too, so `reset`/`set` and
    /// later incrementing loops order after in-flight reads. Completed
    /// entries are pruned on registration and on every wait, keeping the
    /// set O(in-flight).
    pending: Mutex<Vec<SharedFuture<()>>>,
}

/// A global value of `dim` scalars participating in reductions. Cheap to
/// clone; clones alias the same state.
///
/// Protocol per loop iteration step (matching OP2's `op_arg_gbl`): call
/// [`Global::reset`], run the loop with [`crate::arg_gbl_inc`], then
/// [`Global::get`] — which, under the dataflow backend, waits for **every
/// outstanding incrementing loop's** completion future (the drained
/// wait-set above), not merely the most recently submitted one. A global
/// may therefore be incremented by any number of concurrently-submitted
/// loops — including loops on different ranks of a locality group — and
/// `get`/`reset`/`set` still observe a fully-finalized value.
///
/// **Ordering among concurrent submitters.** Registration happens before
/// a submission returns, so a reader that joins its submitter threads
/// first always waits every loop — values are never partially finalized.
/// What stays unspecified is the *relative merge order* of loops whose
/// submissions raced each other (each finalize merges its own
/// generation's partials atomically under the value lock): integer and
/// min/max reductions are exact regardless, but a shared `f64` sum is
/// reproducible only up to that merge order. Submit sequentially — or
/// keep per-rank globals and combine with [`LocalityGroup::allreduce`]'s
/// fixed-shape tree — where bitwise reproducibility matters.
///
/// For reading the value *without* blocking the submitting thread, use
/// [`Global::reduce_async`] (or, across a locality group,
/// `Global::reduce_across` / `LocalityGroup::allreduce` in
/// [`crate::locality`]): the reduced value becomes a [`ReducedFuture`]
/// that dependent work chains off.
///
/// [`LocalityGroup::allreduce`]: crate::locality::LocalityGroup::allreduce
pub struct Global<T: Reducible> {
    inner: Arc<GlobalInner<T>>,
}

impl<T: Reducible> Clone for Global<T> {
    fn clone(&self) -> Self {
        Global {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Reducible> Global<T> {
    /// A new global of `dim` scalars reduced with `op`, initialized to the
    /// identity.
    pub fn new(dim: usize, op: ReduceOp, name: &str) -> Self {
        assert!(dim > 0, "global '{name}': dim must be positive");
        Global {
            inner: Arc::new(GlobalInner {
                dim,
                op,
                name: name.to_owned(),
                value: Mutex::new([T::identity(op)].repeat(dim)),
                partials: Mutex::new(Vec::new()),
                pending: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Sum-reduction global (the common `OP_INC` case).
    pub fn sum(dim: usize, name: &str) -> Self {
        Self::new(dim, ReduceOp::Sum, name)
    }

    /// Scalars per element.
    pub fn dim(&self) -> usize {
        self.inner.dim
    }

    /// Declared name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Declared reduction operator.
    pub fn op(&self) -> ReduceOp {
        self.inner.op
    }

    /// Resets the value to the reduction identity (waits for every
    /// outstanding incrementing loop first so no in-flight reduction is
    /// clobbered).
    pub fn reset(&self) {
        self.wait_pending();
        let mut v = self.inner.value.lock();
        v.iter_mut().for_each(|x| *x = T::identity(self.inner.op));
        self.inner.partials.lock().clear();
    }

    /// Overwrites the value (waits for every outstanding incrementing
    /// loop first).
    pub fn set(&self, values: &[T]) {
        assert_eq!(
            values.len(),
            self.inner.dim,
            "global '{}': dim mismatch",
            self.inner.name
        );
        self.wait_pending();
        self.inner.value.lock().copy_from_slice(values);
    }

    /// Waits for **every** outstanding incrementing loop (the drained
    /// wait-set — see the type docs), then returns the reduced value.
    pub fn get(&self) -> Vec<T> {
        self.wait_pending();
        self.inner.value.lock().clone()
    }

    /// Scalar convenience for `dim == 1` globals.
    pub fn get_scalar(&self) -> T {
        self.get()[0]
    }

    /// Waits every completion future registered before this call, then
    /// drains the completed entries. Loops registered concurrently with
    /// the wait are not covered — as with any `Global` read, the caller
    /// orders its own submissions against its reads.
    fn wait_pending(&self) {
        let snapshot: Vec<SharedFuture<()>> = self.inner.pending.lock().clone();
        for f in &snapshot {
            f.wait();
        }
        if !snapshot.is_empty() {
            self.inner.pending.lock().retain(|f| !f.is_ready());
        }
    }

    // ---- executor protocol ----------------------------------------------

    /// A fresh accumulation buffer (identity-filled).
    pub(crate) fn task_local(&self) -> Vec<T> {
        [T::identity(self.inner.op)].repeat(self.inner.dim)
    }

    /// Commits one chunk's partial, keyed by the owning loop's generation
    /// and the chunk start for deterministic merging.
    pub(crate) fn commit(&self, gen: u64, chunk_start: usize, partial: Vec<T>) {
        self.inner.partials.lock().push((gen, chunk_start, partial));
    }

    /// Merges generation `gen`'s partials into the value in chunk order
    /// (so float reductions are reproducible for a fixed chunk plan).
    /// Other generations' entries — a pipelined successor's partials
    /// committed early — are left untouched for their own finalize.
    pub(crate) fn finalize(&self, gen: u64) {
        let mut mine = Vec::new();
        {
            let mut partials = self.inner.partials.lock();
            let mut i = 0;
            while i < partials.len() {
                if partials[i].0 == gen {
                    mine.push(partials.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        mine.sort_unstable_by_key(|(_, s, _)| *s);
        let mut value = self.inner.value.lock();
        for (_, _, p) in mine {
            for (v, x) in value.iter_mut().zip(p) {
                *v = T::combine(self.inner.op, *v, x);
            }
        }
    }

    /// Adds the owning loop's completion future to the wait-set. Completed
    /// entries are pruned first, so the set stays O(in-flight loops) over
    /// arbitrarily long runs.
    pub(crate) fn record_completion(&self, done: &SharedFuture<()>) {
        let mut p = self.inner.pending.lock();
        p.retain(|f| !f.is_ready());
        p.push(done.clone());
    }

    /// Appends every outstanding incrementing loop's completion future to
    /// `out` (pruning completed entries on the way) — the dependency set a
    /// consumer must order itself after.
    pub(crate) fn collect_pending(&self, out: &mut Vec<SharedFuture<()>>) {
        let mut p = self.inner.pending.lock();
        p.retain(|f| !f.is_ready());
        out.extend(p.iter().cloned());
    }

    /// Snapshot of the outstanding completion futures.
    pub(crate) fn pending_snapshot(&self) -> Vec<SharedFuture<()>> {
        let mut out = Vec::new();
        self.collect_pending(&mut out);
        out
    }

    /// Number of outstanding (unpruned) wait-set entries — test hook for
    /// the O(in-flight) bound.
    #[cfg(test)]
    fn pending_len(&self) -> usize {
        self.inner.pending.lock().len()
    }

    /// Current value snapshot without waiting (internal; used by reduce
    /// nodes and read args whose ordering is enforced through `pending`).
    pub(crate) fn value_snapshot(&self) -> Vec<T> {
        self.inner.value.lock().clone()
    }

    /// Current value pointer without waiting (internal; used by read args
    /// whose ordering is enforced through `pending`).
    pub(crate) fn raw_value_ptr(&self) -> *const T {
        self.inner.value.lock().as_ptr()
    }

    // ---- asynchronous reads ---------------------------------------------

    /// Schedules an **asynchronous read** of this global: a dataflow node
    /// gated on every outstanding incrementing loop snapshots the fully
    /// finalized value into a [`ReducedFuture`], and the submitting thread
    /// returns immediately. This is the paper's Fig 9 discipline for
    /// reductions — the result is a future that dependent work (residual
    /// printing, convergence checks) chains off via [`ReducedFuture::then`]
    /// instead of a blocking [`Global::get`] in the hot loop.
    ///
    /// The node is tracked by `op2`'s [`Op2::fence`], so a fence makes the
    /// future ready.
    pub fn reduce_async(&self, op2: &Op2) -> ReducedFuture<T> {
        self.reduce_on(op2.runtime_arc(), op2.comm_hooks())
    }

    /// [`Global::reduce_async`] on an explicit runtime + tracking hook —
    /// the shared engine behind `reduce_async` and the locality layer's
    /// `Global::reduce_across`.
    pub(crate) fn reduce_on(&self, rt: Arc<Runtime>, hooks: CommHooks) -> ReducedFuture<T> {
        hpx_rt::static_counter!("op2.reduce.async_reads").fetch_add(1, Ordering::Relaxed);
        let deps = self.pending_snapshot();
        let (mut contribs, value) = hpx_rt::lco::collect(1, |a: Vec<T>, _b: Vec<T>| a);
        let c = contribs.pop().expect("one contributor");
        let gbl = self.clone();
        let done = schedule_after(&rt, &deps, move || c.set(gbl.value_snapshot()));
        // The snapshot node joins the wait-set: a subsequent
        // `reset`/`set`/incrementing loop orders *after* this read and
        // cannot clobber (or leak into) the value it will observe.
        self.record_completion(&done);
        hooks.track(done.clone());
        ReducedFuture::from_parts(value, done, rt, hooks)
    }
}

impl<T: Reducible> std::fmt::Debug for Global<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Global")
            .field("name", &self.inner.name)
            .field("dim", &self.inner.dim)
            .field("op", &self.inner.op)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// ReducedFuture
// ---------------------------------------------------------------------------

/// The future-valued result of an asynchronous reduction read
/// ([`Global::reduce_async`], `Global::reduce_across`,
/// `LocalityGroup::allreduce`): the reduced vector becomes available once
/// every contributing loop has finalized, and consumers either block
/// *outside* the hot loop ([`ReducedFuture::get`]) or chain continuations
/// ([`ReducedFuture::then`] / [`ReducedFuture::then_after`]) so the solve
/// pipeline never meets a host-side barrier.
///
/// Cheap to clone; clones alias the same result.
pub struct ReducedFuture<T: Reducible> {
    value: SharedFuture<Vec<T>>,
    /// Completion of the producing node graph. Invariant: by the time
    /// `done` is ready, `value` is fulfilled (the final contribution runs
    /// inside a node `done` joins).
    done: SharedFuture<()>,
    rt: Arc<Runtime>,
    hooks: CommHooks,
}

impl<T: Reducible> Clone for ReducedFuture<T> {
    fn clone(&self) -> Self {
        ReducedFuture {
            value: self.value.clone(),
            done: self.done.clone(),
            rt: Arc::clone(&self.rt),
            hooks: self.hooks.clone(),
        }
    }
}

impl<T: Reducible> ReducedFuture<T> {
    pub(crate) fn from_parts(
        value: SharedFuture<Vec<T>>,
        done: SharedFuture<()>,
        rt: Arc<Runtime>,
        hooks: CommHooks,
    ) -> Self {
        ReducedFuture {
            value,
            done,
            rt,
            hooks,
        }
    }

    /// True once the reduced value is available.
    pub fn is_ready(&self) -> bool {
        self.value.is_ready()
    }

    /// Blocks until the reduction (and its producing nodes) completed.
    /// Workers help-execute while waiting.
    ///
    /// A call that actually has to block is counted under
    /// `op2.reduce.blocking_reads` — the counter that proves (or
    /// disproves) a time loop's "zero blocking residual reads" claim.
    pub fn wait(&self) {
        if !self.done.is_ready() {
            hpx_rt::static_counter!("op2.reduce.blocking_reads").fetch_add(1, Ordering::Relaxed);
        }
        self.done.wait();
    }

    /// Blocks until available, then returns the reduced vector
    /// (re-panicking if a contributing loop panicked). Call this *after*
    /// the solve loop — inside it, chain [`ReducedFuture::then`] instead.
    /// Like [`ReducedFuture::wait`], a call that finds the value not yet
    /// ready counts under `op2.reduce.blocking_reads`.
    pub fn get(&self) -> Vec<T> {
        if !self.value.is_ready() {
            hpx_rt::static_counter!("op2.reduce.blocking_reads").fetch_add(1, Ordering::Relaxed);
        }
        self.value.get()
    }

    /// Scalar convenience for `dim == 1` reductions.
    pub fn get_scalar(&self) -> T {
        self.get()[0]
    }

    /// The completion future of the reduction — usable as an explicit
    /// dependency for hand-built dataflow nodes.
    pub fn done(&self) -> SharedFuture<()> {
        self.done.clone()
    }

    /// Schedules `f(value)` on the runtime once the reduction completes —
    /// the non-blocking substitute for a `get` in the hot loop. The
    /// continuation node is tracked for the owning context's fence;
    /// returns its completion future.
    pub fn then<F>(&self, f: F) -> SharedFuture<()>
    where
        F: FnOnce(Vec<T>) + Send + 'static,
    {
        self.then_after(&[], f)
    }

    /// [`ReducedFuture::then`] gated on additional dependencies — e.g. the
    /// previous iteration's print node, so residual lines appear in order
    /// without ever blocking the submitting thread.
    pub fn then_after<F>(&self, after: &[SharedFuture<()>], f: F) -> SharedFuture<()>
    where
        F: FnOnce(Vec<T>) + Send + 'static,
    {
        let mut deps: Vec<SharedFuture<()>> = Vec::with_capacity(after.len() + 1);
        deps.push(self.done.clone());
        deps.extend(after.iter().cloned());
        let value = self.value.clone();
        // `value` is fulfilled before `done` (struct invariant), so the
        // `get` inside the node never blocks.
        let node = schedule_after(&self.rt, &deps, move || f(value.get()));
        self.hooks.track(node.clone());
        node
    }
}

impl<T: Reducible> std::fmt::Debug for ReducedFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReducedFuture")
            .field("ready", &self.is_ready())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_reduction_merges_in_chunk_order() {
        let g = Global::<f64>::sum(1, "rms");
        g.commit(7, 100, vec![2.0]);
        g.commit(7, 0, vec![1.0]);
        g.commit(7, 200, vec![3.0]);
        g.finalize(7);
        assert_eq!(g.get_scalar(), 6.0);
    }

    #[test]
    fn reset_restores_identity() {
        let g = Global::<f64>::sum(2, "r");
        g.commit(1, 0, vec![1.0, 2.0]);
        g.finalize(1);
        assert_eq!(g.get(), vec![1.0, 2.0]);
        g.reset();
        assert_eq!(g.get(), vec![0.0, 0.0]);
    }

    #[test]
    fn finalize_only_drains_its_own_generation() {
        // A pipelined successor loop (gen 2) may commit partials before
        // the predecessor (gen 1) finalizes; gen 1's finalize must not
        // steal them.
        let g = Global::<f64>::sum(1, "rms");
        g.commit(1, 0, vec![1.0]);
        g.commit(2, 0, vec![10.0]);
        g.finalize(1);
        assert_eq!(g.get_scalar(), 1.0);
        g.finalize(2);
        assert_eq!(g.get_scalar(), 11.0);
    }

    #[test]
    fn min_max_identities() {
        assert_eq!(f64::identity(ReduceOp::Min), f64::INFINITY);
        assert_eq!(i32::identity(ReduceOp::Max), i32::MIN);
        assert_eq!(f64::combine(ReduceOp::Min, 1.0, -2.0), -2.0);
        assert_eq!(u32::combine(ReduceOp::Max, 1, 7), 7);
    }

    #[test]
    fn set_and_get() {
        let g = Global::<i64>::new(3, ReduceOp::Sum, "v");
        g.set(&[1, 2, 3]);
        assert_eq!(g.get(), vec![1, 2, 3]);
    }

    #[test]
    fn finalize_with_zero_partials_keeps_the_value() {
        // An empty-set loop commits no partials; its finalize must be a
        // well-defined no-op, not a surprise.
        let g = Global::<f64>::sum(2, "r");
        g.commit(1, 0, vec![1.0, 2.0]);
        g.finalize(1);
        g.finalize(2); // zero partials for gen 2
        assert_eq!(g.get(), vec![1.0, 2.0]);
    }

    /// The wait-set regression (ISSUE 5 tentpole): with the old
    /// single-slot `pending`, registering a second (already complete)
    /// incrementing loop *overwrote* the first loop's still-running
    /// completion future, so `get()` returned a partially-finalized value.
    /// Deterministic exposure: loop 1 is held hostage on an event, loop 2
    /// completes immediately — `get()` must still see both.
    #[test]
    fn get_waits_every_outstanding_loop_not_just_the_latest() {
        use hpx_rt::lco::Event;

        let rt = Runtime::new(2);
        let g = Global::<f64>::sum(1, "rms");
        let gate = Arc::new(Event::new());

        // Loop 1: partial committed, finalize hostage on the gate.
        g.commit(1, 0, vec![1.0]);
        let g1 = g.clone();
        let gate1 = Arc::clone(&gate);
        let f1 = rt
            .spawn_future(move || {
                gate1.wait();
                g1.finalize(1);
            })
            .share();
        g.record_completion(&f1);

        // Loop 2: complete before registration — the single-slot bug
        // dropped f1 here and `get()` observed only this loop's merge.
        g.commit(2, 0, vec![10.0]);
        g.finalize(2);
        g.record_completion(&SharedFuture::ready(()));

        let g2 = g.clone();
        let reader = std::thread::spawn(move || g2.get_scalar());
        // Loop 1 is provably still hostage while the reader runs.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!f1.is_ready(), "hostage loop completed early");
        gate.set();
        assert_eq!(
            reader.join().expect("reader thread"),
            11.0,
            "get() missed a still-running incrementing loop's finalize"
        );
    }

    #[test]
    fn wait_set_stays_bounded_by_in_flight_loops() {
        // Completed futures are pruned on registration, so a long solver
        // run never accumulates one entry per past loop.
        let g = Global::<i64>::sum(1, "r");
        for _ in 0..1000 {
            g.record_completion(&SharedFuture::ready(()));
        }
        assert!(
            g.pending_len() <= 1,
            "wait-set grew to {} entries despite pruning",
            g.pending_len()
        );
        g.get(); // drains the remainder
        assert_eq!(g.pending_len(), 0);
    }

    #[test]
    fn collect_pending_reports_all_outstanding() {
        let rt = Runtime::new(1);
        let g = Global::<i64>::sum(1, "r");
        let gate = Arc::new(hpx_rt::lco::Event::new());
        let futs: Vec<SharedFuture<()>> = (0..3)
            .map(|_| {
                let gate = Arc::clone(&gate);
                rt.spawn_future(move || gate.wait()).share()
            })
            .collect();
        for f in &futs {
            g.record_completion(f);
        }
        let mut out = Vec::new();
        g.collect_pending(&mut out);
        assert_eq!(out.len(), 3, "every outstanding loop must be reported");
        gate.set();
        g.get();
        assert_eq!(g.pending_len(), 0);
    }
}
