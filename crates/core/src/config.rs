//! Execution configuration: which backend runs the loops and how work is
//! divided.

use hpx_rt::timing::Clock;
use hpx_rt::{ChunkPolicy, GranularityFeedback, PersistentChunker};

use crate::dat::Layout;
use crate::driver::SpecShare;

/// The three execution strategies compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Reference sequential execution (validation baseline).
    Seq,
    /// The `#pragma omp parallel for` equivalent: synchronous parallel
    /// loops with an implicit **global barrier** after every loop and
    /// after every color round (paper §II-B, Fig 4).
    ForkJoin,
    /// The paper's contribution: every loop is a dataflow node over future
    /// arguments; loops interleave according to the data-dependency graph
    /// with no global barriers (paper §IV, Figs 8-11).
    Dataflow,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Seq => "seq",
            Backend::ForkJoin => "fork-join",
            Backend::Dataflow => "dataflow",
        })
    }
}

/// OP2's default mini-partition block size.
pub const DEFAULT_BLOCK_SIZE: usize = 256;

/// Configuration of an [`Op2`](crate::Op2) context.
#[derive(Debug, Clone)]
pub struct Op2Config {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Loop execution strategy.
    pub backend: Backend,
    /// Mini-partition block size: the granularity of every dat's
    /// dependency (epoch) table, and the *conservative probe default* a
    /// measuring chunk policy schedules a Dataflow loop at until feedback
    /// for that (kernel, set) exists.
    pub block_size: usize,
    /// Chunking strategy for the ForkJoin backend's parallel-for phases —
    /// and the node granularity of every Dataflow loop. The probe-free
    /// uniform policies ([`ChunkPolicy::Static`], [`ChunkPolicy::NumChunks`])
    /// set it directly; the measuring policies ([`ChunkPolicy::Auto`],
    /// [`ChunkPolicy::PersistentAuto`]) and [`ChunkPolicy::Guided`] resolve
    /// it from *measured feedback* — executed nodes record their per-element
    /// cost into a [`hpx_rt::GranularityFeedback`] accumulator, and the next
    /// submission of the same (kernel, set) sizes its nodes to hit the
    /// policy's target duration (first submission probes at
    /// [`Op2Config::block_size`]). See `README.md` § Adaptive chunking.
    pub chunk: ChunkPolicy,
    /// Prefetch distance factor (cache lines of look-ahead, paper §V);
    /// `None` disables the prefetching iterator.
    pub prefetch_distance: Option<usize>,
    /// Default physical layout of dats declared through
    /// [`Op2::decl_dat`](crate::Op2::decl_dat) /
    /// [`Op2::decl_dat_halo`](crate::Op2::decl_dat_halo). Per-dat
    /// overrides: `decl_dat_layout` / `decl_dat_halo_layout`.
    pub layout: Layout,
    /// Clock the granularity feedback measures through. [`Clock::real`] in
    /// production; tests inject [`Clock::fake`] to drive adaptive-chunking
    /// convergence deterministically. A
    /// [`ChunkPolicy::PersistentAuto`] chunker carries its own clock and
    /// ignores this one.
    pub clock: Clock,
    /// Loop-spec cache this world resolves schedules through. `None` (the
    /// default) gives the world a private cache; a [`SpecShare`] handle
    /// cloned into several configs makes those worlds share warm schedules
    /// — cache keys are content signatures, so same-shaped meshes hit
    /// across worlds (see [`crate::farm`]).
    pub shared_specs: Option<SpecShare>,
    /// Measured-cost table adaptive granularity resolves from. `None` (the
    /// default) follows the chunk policy: a
    /// [`ChunkPolicy::PersistentAuto`] chunker's own table, else a private
    /// accumulator on [`Op2Config::clock`]. An explicit handle overrides
    /// both — the farm installs one table for every tenant world, so a
    /// tenant's first loop resolves granularity from costs its neighbours
    /// already measured.
    pub shared_feedback: Option<GranularityFeedback>,
    /// Rank this world's feedback handle attributes measurements to.
    /// `None` (the default) leaves the handle untagged; the locality layer
    /// tags each rank world so measured kernel time accumulates per rank —
    /// the imbalance signal live repartitioning reads
    /// ([`hpx_rt::GranularityFeedback::rank_busy_ns`]).
    pub feedback_rank: Option<u32>,
}

impl Op2Config {
    /// Sequential reference configuration.
    pub fn seq() -> Self {
        Op2Config {
            threads: 1,
            backend: Backend::Seq,
            block_size: DEFAULT_BLOCK_SIZE,
            chunk: ChunkPolicy::NumChunks { chunks: 1 },
            prefetch_distance: None,
            layout: Layout::AoS,
            clock: Clock::real(),
            shared_specs: None,
            shared_feedback: None,
            feedback_rank: None,
        }
    }

    /// OpenMP-equivalent baseline: static schedule (one chunk per thread),
    /// global barrier per loop.
    pub fn fork_join(threads: usize) -> Self {
        Op2Config {
            threads,
            backend: Backend::ForkJoin,
            block_size: DEFAULT_BLOCK_SIZE,
            chunk: ChunkPolicy::NumChunks {
                chunks: threads.max(1),
            },
            prefetch_distance: None,
            layout: Layout::AoS,
            clock: Clock::real(),
            shared_specs: None,
            shared_feedback: None,
            feedback_rank: None,
        }
    }

    /// The paper's asynchronous configuration, at block granularity: one
    /// dataflow node per `block_size` mini-partition block, wired through
    /// the per-block epoch tables.
    pub fn dataflow(threads: usize) -> Self {
        Op2Config {
            threads,
            backend: Backend::Dataflow,
            block_size: DEFAULT_BLOCK_SIZE,
            chunk: ChunkPolicy::default(),
            prefetch_distance: None,
            layout: Layout::AoS,
            clock: Clock::real(),
            shared_specs: None,
            shared_feedback: None,
            feedback_rank: None,
        }
    }

    /// Dataflow with the paper's `persistent_auto_chunk_size` policy
    /// (§IV-B) installed as the chunk policy, sharing `chunker`'s
    /// calibrated target and measured cost table. On the Dataflow backend
    /// node granularity is *feedback-resolved*: each executed node records
    /// its per-element cost into the chunker's
    /// [`hpx_rt::GranularityFeedback`], and later submissions of the same
    /// (kernel, set) size their nodes so every node takes about the
    /// chunker's target duration — different kernels get different node
    /// sizes but equal node times, exactly the paper's Fig 12b behaviour.
    /// Clone one handle into several configs (ranks, phases) to share the
    /// calibration.
    pub fn dataflow_persistent(threads: usize, chunker: PersistentChunker) -> Self {
        let clock = chunker.feedback().clock().clone();
        Op2Config {
            threads,
            backend: Backend::Dataflow,
            block_size: DEFAULT_BLOCK_SIZE,
            chunk: ChunkPolicy::PersistentAuto(chunker),
            prefetch_distance: None,
            layout: Layout::AoS,
            clock,
            shared_specs: None,
            shared_feedback: None,
            feedback_rank: None,
        }
    }

    /// The paper's headline configuration: Dataflow backend with
    /// `persistent_auto_chunk_size` — and, since the feedback-driven
    /// granularity engine, it means the *same thing on both backends*:
    /// measured, duration-targeted chunk sizes, whether the chunks are
    /// ForkJoin parallel-for chunks (sized by a synchronous probe) or
    /// Dataflow nodes (sized from the feedback of previous executions).
    pub fn persistent_auto(threads: usize) -> Self {
        Self::dataflow_persistent(threads, PersistentChunker::new())
    }

    /// Overrides the block size.
    #[must_use]
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size.max(1);
        self
    }

    /// Overrides the chunking strategy.
    #[must_use]
    pub fn with_chunk(mut self, chunk: ChunkPolicy) -> Self {
        self.chunk = chunk;
        self
    }

    /// Enables the prefetching iterator with the given distance factor
    /// (the paper finds 15 optimal for Airfoil).
    #[must_use]
    pub fn with_prefetch(mut self, distance_factor: usize) -> Self {
        self.prefetch_distance = Some(distance_factor);
        self
    }

    /// Disables prefetching.
    #[must_use]
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch_distance = None;
        self
    }

    /// Sets the default physical layout of declared dats (the AoS/SoA
    /// policy; see [`Layout`]).
    #[must_use]
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Overrides the feedback clock — tests install [`Clock::fake`] to
    /// drive adaptive-granularity convergence deterministically. (A
    /// `PersistentAuto` chunker measures through its own clock instead;
    /// build it with [`PersistentChunker::with_target_and_clock`].)
    #[must_use]
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Resolves loop schedules through `specs` instead of a private cache.
    /// Clone one [`SpecShare`] into several configs and the worlds built
    /// from them share warm schedules (content-signature keys — see
    /// [`Op2Config::shared_specs`]).
    #[must_use]
    pub fn with_shared_specs(mut self, specs: SpecShare) -> Self {
        self.shared_specs = Some(specs);
        self
    }

    /// Resolves adaptive granularity from `feedback` instead of the chunk
    /// policy's own table (see [`Op2Config::shared_feedback`]).
    #[must_use]
    pub fn with_shared_feedback(mut self, feedback: GranularityFeedback) -> Self {
        self.shared_feedback = Some(feedback);
        self
    }

    /// Attributes this world's feedback measurements to `rank` (per-rank
    /// busy time + rank-local cost table; see
    /// [`Op2Config::feedback_rank`]).
    #[must_use]
    pub fn with_feedback_rank(mut self, rank: u32) -> Self {
        self.feedback_rank = Some(rank);
        self
    }
}

impl Default for Op2Config {
    fn default() -> Self {
        Op2Config::dataflow(std::thread::available_parallelism().map_or(2, |n| n.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_join_uses_static_schedule() {
        let c = Op2Config::fork_join(8);
        assert_eq!(c.backend, Backend::ForkJoin);
        match c.chunk {
            ChunkPolicy::NumChunks { chunks } => assert_eq!(chunks, 8),
            _ => panic!("expected static split"),
        }
    }

    #[test]
    fn builders_compose() {
        let c = Op2Config::dataflow(4)
            .with_block_size(128)
            .with_prefetch(15);
        assert_eq!(c.block_size, 128);
        assert_eq!(c.prefetch_distance, Some(15));
        assert_eq!(c.without_prefetch().prefetch_distance, None);
    }

    #[test]
    fn persistent_auto_is_dataflow_with_persistent_chunker() {
        let c = Op2Config::persistent_auto(3);
        assert_eq!(c.backend, Backend::Dataflow);
        assert!(matches!(c.chunk, ChunkPolicy::PersistentAuto(_)));
        assert!(!c.clock.is_fake());
    }

    #[test]
    fn persistent_config_inherits_the_chunker_clock() {
        use std::time::Duration;
        let h = PersistentChunker::with_target_and_clock(Duration::from_micros(50), Clock::fake());
        let c = Op2Config::dataflow_persistent(2, h);
        assert!(c.clock.is_fake(), "config clock follows the chunker");
    }

    #[test]
    fn layout_defaults_to_aos_and_composes() {
        assert_eq!(Op2Config::dataflow(2).layout, Layout::AoS);
        let c = Op2Config::seq().with_layout(Layout::SoA);
        assert_eq!(c.layout, Layout::SoA);
    }

    #[test]
    fn backend_names() {
        assert_eq!(Backend::ForkJoin.to_string(), "fork-join");
        assert_eq!(Backend::Dataflow.to_string(), "dataflow");
    }
}
