//! Execution configuration: which backend runs the loops and how work is
//! divided.

use hpx_rt::{ChunkPolicy, PersistentChunker};

/// The three execution strategies compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Reference sequential execution (validation baseline).
    Seq,
    /// The `#pragma omp parallel for` equivalent: synchronous parallel
    /// loops with an implicit **global barrier** after every loop and
    /// after every color round (paper §II-B, Fig 4).
    ForkJoin,
    /// The paper's contribution: every loop is a dataflow node over future
    /// arguments; loops interleave according to the data-dependency graph
    /// with no global barriers (paper §IV, Figs 8-11).
    Dataflow,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Seq => "seq",
            Backend::ForkJoin => "fork-join",
            Backend::Dataflow => "dataflow",
        })
    }
}

/// OP2's default mini-partition block size.
pub const DEFAULT_BLOCK_SIZE: usize = 256;

/// Configuration of an [`Op2`](crate::Op2) context.
#[derive(Debug, Clone)]
pub struct Op2Config {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Loop execution strategy.
    pub backend: Backend,
    /// Mini-partition block size for indirect loops — and, since the
    /// block-granular engine, the task granularity of every Dataflow
    /// loop (one dataflow node per block).
    pub block_size: usize,
    /// Chunking strategy for the ForkJoin backend's parallel-for phases —
    /// and, for the probe-free uniform policies ([`ChunkPolicy::Static`],
    /// [`ChunkPolicy::NumChunks`]), the node granularity of *direct*
    /// Dataflow loops. Colored (indirect) Dataflow loops always use
    /// [`Op2Config::block_size`], the coloring granularity; the measuring
    /// policies fall back to it too (a timing probe has no place in graph
    /// construction).
    pub chunk: ChunkPolicy,
    /// Prefetch distance factor (cache lines of look-ahead, paper §V);
    /// `None` disables the prefetching iterator.
    pub prefetch_distance: Option<usize>,
}

impl Op2Config {
    /// Sequential reference configuration.
    pub fn seq() -> Self {
        Op2Config {
            threads: 1,
            backend: Backend::Seq,
            block_size: DEFAULT_BLOCK_SIZE,
            chunk: ChunkPolicy::NumChunks { chunks: 1 },
            prefetch_distance: None,
        }
    }

    /// OpenMP-equivalent baseline: static schedule (one chunk per thread),
    /// global barrier per loop.
    pub fn fork_join(threads: usize) -> Self {
        Op2Config {
            threads,
            backend: Backend::ForkJoin,
            block_size: DEFAULT_BLOCK_SIZE,
            chunk: ChunkPolicy::NumChunks {
                chunks: threads.max(1),
            },
            prefetch_distance: None,
        }
    }

    /// The paper's asynchronous configuration, at block granularity: one
    /// dataflow node per `block_size` mini-partition block, wired through
    /// the per-block epoch tables.
    pub fn dataflow(threads: usize) -> Self {
        Op2Config {
            threads,
            backend: Backend::Dataflow,
            block_size: DEFAULT_BLOCK_SIZE,
            chunk: ChunkPolicy::default(),
            prefetch_distance: None,
        }
    }

    /// Dataflow with the paper's `persistent_auto_chunk_size` policy
    /// (§IV-B) installed as the chunk policy. Note: measuring policies
    /// need a synchronous timing probe, which has no place in dataflow
    /// graph construction, so Dataflow nodes fall back to `block_size`
    /// granularity under this config — the persistent chunker still
    /// calibrates any `hpx-rt` algorithms run through it and the ForkJoin
    /// fallback, and the constructor is kept so paper-harness variants
    /// remain expressible. To tune Dataflow granularity use
    /// [`Op2Config::with_block_size`], or a probe-free uniform policy
    /// ([`ChunkPolicy::Static`] / [`ChunkPolicy::NumChunks`]), which
    /// direct Dataflow loops honor.
    pub fn dataflow_persistent(threads: usize, chunker: PersistentChunker) -> Self {
        Op2Config {
            threads,
            backend: Backend::Dataflow,
            block_size: DEFAULT_BLOCK_SIZE,
            chunk: ChunkPolicy::PersistentAuto(chunker),
            prefetch_distance: None,
        }
    }

    /// Overrides the block size.
    #[must_use]
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size.max(1);
        self
    }

    /// Overrides the chunking strategy.
    #[must_use]
    pub fn with_chunk(mut self, chunk: ChunkPolicy) -> Self {
        self.chunk = chunk;
        self
    }

    /// Enables the prefetching iterator with the given distance factor
    /// (the paper finds 15 optimal for Airfoil).
    #[must_use]
    pub fn with_prefetch(mut self, distance_factor: usize) -> Self {
        self.prefetch_distance = Some(distance_factor);
        self
    }

    /// Disables prefetching.
    #[must_use]
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch_distance = None;
        self
    }
}

impl Default for Op2Config {
    fn default() -> Self {
        Op2Config::dataflow(std::thread::available_parallelism().map_or(2, |n| n.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_join_uses_static_schedule() {
        let c = Op2Config::fork_join(8);
        assert_eq!(c.backend, Backend::ForkJoin);
        match c.chunk {
            ChunkPolicy::NumChunks { chunks } => assert_eq!(chunks, 8),
            _ => panic!("expected static split"),
        }
    }

    #[test]
    fn builders_compose() {
        let c = Op2Config::dataflow(4)
            .with_block_size(128)
            .with_prefetch(15);
        assert_eq!(c.block_size, 128);
        assert_eq!(c.prefetch_distance, Some(15));
        assert_eq!(c.without_prefetch().prefetch_distance, None);
    }

    #[test]
    fn backend_names() {
        assert_eq!(Backend::ForkJoin.to_string(), "fork-join");
        assert_eq!(Backend::Dataflow.to_string(), "dataflow");
    }
}
