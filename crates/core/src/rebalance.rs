//! Feedback-driven live repartitioning: the locality-layer half of the
//! dynamic load-balancing protocol.
//!
//! The pipeline (driven by a solver layer, e.g. the sharded Airfoil):
//!
//! 1. **Measure** — every rank world of a [`LocalityGroup`] carries a
//!    rank-tagged [`hpx_rt::GranularityFeedback`] handle, so each executed
//!    node's measured time accumulates per rank. [`agree_rank_busy`]
//!    collects the per-rank busy nanoseconds across the whole job (a
//!    control-message star under a distributed transport, so every SPMD
//!    process agrees on the same vector and makes the same decision).
//! 2. **Decide** — [`cost_levels`] turns busy times into quantized
//!    per-element cost weights. The quantization is the protocol's
//!    hysteresis *and* its bitwise-safety keystone: a balanced workload
//!    (all ratios inside the dead zone) yields `None`, the solver skips
//!    migration entirely, and a never-skewed run stays bit-identical to
//!    the non-rebalancing path.
//! 3. **Repartition** — the solver re-runs the greedy-BFS partitioner
//!    with cost-weighted quotas
//!    (`op2_mesh::partition_greedy_bfs_weighted`) and declares fresh
//!    shards for the new ownership.
//! 4. **Migrate** — [`MigrationSpec::diff`] turns old/new ownership into
//!    per-rank-pair row moves and [`migrate_rows`] schedules them as
//!    ordinary epoch-table nodes: gathers read the old shards as block
//!    *readers*, landings write the new shards as block *writers*, and
//!    cross-process moves travel as [`MsgKind::Migrate`] messages. The
//!    dataflow never stops — in-flight loops on the old shards simply
//!    precede the gathers in the epoch tables, and the first loops on the
//!    new shards gate on the landings.
//! 5. **Invalidate** — the solver retires the old set signatures
//!    ([`crate::Op2::retire_set_signature`]) so a stale cached schedule or
//!    cost estimate for the pre-migration shape can never be hit again.
//!
//! Halo mirrors are *not* migrated: a freshly linked halo ring starts with
//! every import stale, so the first post-migration reader refreshes its
//! mirrors from the (already migrated) owned rows.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use hpx_rt::{schedule_after, when_all_shared, SharedFuture};

use crate::dat::Dat;
use crate::locality::{schedule_send_half, ExchangeOpts, LocalityGroup};
use crate::transport::{decode_scalars, MsgKind, Transport};
use crate::types::{next_loop_gen, OpType};
use crate::world::CommHooks;

/// Default imbalance dead zone of [`cost_levels`]: per-element cost ratios
/// under 1.5x are treated as noise, not as a reason to migrate.
pub const DEFAULT_DEAD_ZONE: f64 = 1.5;

/// Collects every rank's measured busy nanoseconds (see
/// [`hpx_rt::GranularityFeedback::rank_busy_ns`]) across the whole job.
///
/// All-local groups read the rank worlds directly. Distributed groups run
/// a gather/broadcast star over [`MsgKind::Ctrl`] messages — every process
/// must call this at the same program point (SPMD), and every process
/// returns the identical vector, which is what lets them all take the
/// same rebalance decision without negotiation. Only the submitting thread
/// blocks; runtime workers keep draining the dataflow.
pub fn agree_rank_busy(group: &LocalityGroup) -> Vec<u64> {
    let n = group.nranks();
    let local = group.local_ranks();
    let mut busy = vec![0u64; n];
    for (i, world) in group.ranks().iter().enumerate() {
        let r = local.start + i;
        busy[r] = world.granularity_feedback().rank_busy_ns(r as u32);
    }
    let transport = group.transport();
    if transport.all_local() {
        return busy;
    }
    // Star over rank 0, like the transport barrier: every non-zero rank
    // sends its value up, rank 0 broadcasts the assembled vector down.
    for r in local.clone() {
        if r != 0 {
            let seq = transport.next_seq(MsgKind::Ctrl, r, 0);
            transport.send(
                MsgKind::Ctrl,
                r,
                0,
                seq,
                None,
                busy[r].to_le_bytes().to_vec(),
            );
        }
    }
    if local.contains(&0) {
        for (s, slot) in busy.iter_mut().enumerate().skip(1) {
            let seq = transport.next_seq(MsgKind::Ctrl, s, 0);
            let d = transport.recv(MsgKind::Ctrl, s, 0, seq);
            d.ready().wait();
            let bytes = d.take().expect("rank-busy agreement abandoned by a peer");
            *slot = u64::from_le_bytes(bytes.as_slice().try_into().expect("8-byte payload"));
        }
        let full: Vec<u8> = busy.iter().flat_map(|v| v.to_le_bytes()).collect();
        for s in 1..n {
            let seq = transport.next_seq(MsgKind::Ctrl, 0, s);
            transport.send(MsgKind::Ctrl, 0, s, seq, None, full.clone());
        }
    }
    for r in local {
        if r != 0 {
            let seq = transport.next_seq(MsgKind::Ctrl, 0, r);
            let d = transport.recv(MsgKind::Ctrl, 0, r, seq);
            d.ready().wait();
            let bytes = d.take().expect("rank-busy broadcast abandoned by rank 0");
            for (s, chunk) in bytes.chunks_exact(8).enumerate() {
                busy[s] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunks"));
            }
        }
    }
    busy
}

/// `max / mean` of the per-rank busy times — 1.0 is perfect balance, k
/// means the slowest rank carries k× the average load. `None` if any rank
/// has no measurement yet (no decision can be taken).
pub fn imbalance_ratio(busy: &[u64]) -> Option<f64> {
    if busy.is_empty() || busy.contains(&0) {
        return None;
    }
    let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
    Some(*busy.iter().max().expect("non-empty") as f64 / mean)
}

/// Quantizes measured per-rank busy times into integer per-element cost
/// levels (`busy[r] / owned[r]`, normalized by the cheapest rank and
/// rounded), the weights a cost-aware repartition feeds to
/// `partition_greedy_bfs_weighted`.
///
/// Returns `None` — *do not migrate* — when any rank lacks a measurement
/// or owns nothing, when the worst/best cost ratio is inside `dead_zone`,
/// or when every level rounds to the same value. The integer rounding is
/// deliberate hysteresis: measurement jitter cannot produce a new
/// partition every iteration, and a balanced run provably never migrates
/// (the bitwise-equality guarantee of the non-rebalancing path).
pub fn cost_levels(busy: &[u64], owned: &[usize], dead_zone: f64) -> Option<Vec<u64>> {
    assert_eq!(busy.len(), owned.len(), "one busy time per rank");
    if busy.is_empty() || busy.iter().zip(owned).any(|(&b, &o)| b == 0 || o == 0) {
        return None;
    }
    let cost: Vec<f64> = busy
        .iter()
        .zip(owned)
        .map(|(&b, &o)| b as f64 / o as f64)
        .collect();
    let min = cost.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = cost.iter().cloned().fold(0.0f64, f64::max);
    if max / min < dead_zone.max(1.0) {
        return None;
    }
    let levels: Vec<u64> = cost
        .iter()
        .map(|c| (c / min).round().max(1.0) as u64)
        .collect();
    if levels.windows(2).all(|w| w[0] == w[1]) {
        return None;
    }
    Some(levels)
}

/// The row moves realizing one ownership change: for every `(src, dst)`
/// rank pair, which local rows of `src`'s *old* shard land in which local
/// rows of `dst`'s *new* shard. Every resident row of the new shards is
/// covered — renumbering moves rows even on ranks that keep them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationSpec {
    /// Number of ranks.
    pub nranks: usize,
    /// `moves[src][dst] = (rows in src's old shard, rows in dst's new
    /// shard)` — parallel lists, same order.
    pub moves: Vec<Vec<(Vec<u32>, Vec<u32>)>>,
}

impl MigrationSpec {
    /// Diffs old and new ownership (each rank's owned element ids,
    /// ascending — `Partition::owned_all` order, which is also the local
    /// row numbering of the shard builders).
    pub fn diff(old_owned: &[Vec<u32>], new_owned: &[Vec<u32>]) -> MigrationSpec {
        let n = old_owned.len();
        assert_eq!(new_owned.len(), n, "rank count changed across ownership");
        let total: usize = old_owned.iter().map(Vec::len).sum();
        assert_eq!(
            new_owned.iter().map(Vec::len).sum::<usize>(),
            total,
            "ownership must cover the same elements"
        );
        let mut old_loc = vec![(u32::MAX, 0u32); total];
        for (r, rows) in old_owned.iter().enumerate() {
            for (i, &g) in rows.iter().enumerate() {
                old_loc[g as usize] = (r as u32, i as u32);
            }
        }
        let mut moves = vec![vec![(Vec::new(), Vec::new()); n]; n];
        for (dst, rows) in new_owned.iter().enumerate() {
            for (i, &g) in rows.iter().enumerate() {
                let (src, srow) = old_loc[g as usize];
                assert_ne!(src, u32::MAX, "element {g} unowned in the old partition");
                let pair = &mut moves[src as usize][dst];
                pair.0.push(srow);
                pair.1.push(i as u32);
            }
        }
        MigrationSpec { nranks: n, moves }
    }

    /// Rows changing owner rank (diagnostics; same-rank renumbering moves
    /// are excluded).
    pub fn rows_crossing(&self) -> usize {
        (0..self.nranks)
            .flat_map(|s| (0..self.nranks).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d)
            .map(|(s, d)| self.moves[s][d].0.len())
            .sum()
    }
}

/// Schedules the row moves of `spec` from the old shards into the new
/// ones as ordinary epoch-table nodes — the dataflow keeps flowing (see
/// module docs). `old[i]` / `new[i]` are local rank
/// `group.local_ranks().start + i`'s shards of one logical dat.
///
/// Same-process pairs run as one gather+scatter copy node; cross-process
/// pairs travel as [`MsgKind::Migrate`] messages with the send halves
/// scheduled before any receive half (the same deadlock-avoidance
/// discipline as halo exchange). Returns one completion future per local
/// rank, already tracked for the rank fences.
pub fn migrate_rows<T: OpType>(
    group: &LocalityGroup,
    old: &[Dat<T>],
    new: &[Dat<T>],
    spec: &MigrationSpec,
    opts: &ExchangeOpts,
) -> Vec<SharedFuture<()>> {
    let n = spec.nranks;
    assert_eq!(group.nranks(), n, "spec rank count matches the group");
    let local = group.local_ranks();
    let first = local.start;
    assert_eq!(old.len(), local.len(), "one old shard per local rank");
    assert_eq!(new.len(), local.len(), "one new shard per local rank");
    let transport = group.transport();
    // One reader generation for every gather, one writer generation for
    // every landing: nodes of one migration accumulate in the epoch
    // tables instead of superseding each other (they are the many nodes
    // of one logical scatter).
    let send_gen = next_loop_gen();
    let recv_gen = next_loop_gen();
    let mut done: Vec<Vec<SharedFuture<()>>> = (0..local.len()).map(|_| Vec::new()).collect();
    let mut rows_moved = 0u64;
    let mut pending_copies: Vec<(usize, usize)> = Vec::new();
    let mut pending_recvs: Vec<(usize, usize, u64)> = Vec::new();
    for src in 0..n {
        for dst in 0..n {
            let (src_rows, _) = &spec.moves[src][dst];
            if src_rows.is_empty() {
                continue;
            }
            let src_local = local.contains(&src);
            let dst_local = local.contains(&dst);
            if !src_local && !dst_local {
                continue;
            }
            rows_moved += src_rows.len() as u64;
            if src_local && dst_local {
                // Same process: one copy node, no wire round-trip.
                pending_copies.push((src, dst));
                continue;
            }
            let seq = transport.next_seq(MsgKind::Migrate, src, dst);
            if src_local {
                let f = schedule_send_half(
                    MsgKind::Migrate,
                    src,
                    dst,
                    &group.ranks()[src - first].comm_hooks(),
                    &old[src - first],
                    src_rows,
                    send_gen,
                    seq,
                    transport,
                    opts,
                );
                done[src - first].push(f);
            } else {
                pending_recvs.push((src, dst, seq));
            }
        }
    }
    // Copy and receive nodes register as writers of the new shards; they
    // come after every send half so the cross-rank wait graph stays
    // acyclic under symmetric SPMD scheduling.
    for (src, dst) in pending_copies {
        let f = schedule_copy(
            src,
            dst,
            &group.ranks()[dst - first].comm_hooks(),
            &old[src - first],
            &new[dst - first],
            &spec.moves[src][dst],
            send_gen,
            recv_gen,
        );
        done[src - first].push(f.clone());
        if src != dst {
            done[dst - first].push(f);
        }
    }
    for (src, dst, seq) in pending_recvs {
        let f = schedule_migrate_recv(
            src,
            dst,
            &group.ranks()[dst - first].comm_hooks(),
            &new[dst - first],
            &spec.moves[src][dst].1,
            recv_gen,
            seq,
            transport,
        );
        done[dst - first].push(f);
    }
    hpx_rt::static_counter!("op2.rebalance.rows_moved").fetch_add(rows_moved, Ordering::Relaxed);
    done.into_iter()
        .map(|futs| match futs.len() {
            0 => SharedFuture::ready(()),
            1 => futs.into_iter().next().expect("one future"),
            _ => when_all_shared(&futs).share(),
        })
        .collect()
}

/// One same-process move: gather `src_rows` from the old shard (reader of
/// their blocks), scatter into `dst_rows` of the new shard (writer of
/// theirs).
#[allow(clippy::too_many_arguments)]
fn schedule_copy<T: OpType>(
    src: usize,
    dst: usize,
    hooks: &CommHooks,
    dat_old: &Dat<T>,
    dat_new: &Dat<T>,
    rows: &(Vec<u32>, Vec<u32>),
    send_gen: u64,
    recv_gen: u64,
) -> SharedFuture<()> {
    let (src_rows, dst_rows) = rows;
    assert_eq!(src_rows.len(), dst_rows.len(), "move {src}->{dst} lists");
    assert!(
        src_rows
            .iter()
            .all(|&r| (r as usize) < dat_old.set().size()),
        "move {src}->{dst}: sources must be owned rows of '{}'",
        dat_old.name()
    );
    assert!(
        dst_rows
            .iter()
            .all(|&r| (r as usize) < dat_new.set().size()),
        "move {src}->{dst}: landings must be owned rows of '{}'",
        dat_new.name()
    );
    let src_blocks = blocks_of(src_rows, dat_old.dep_block_size());
    let dst_blocks = blocks_of(dst_rows, dat_new.dep_block_size());
    let mut deps: Vec<SharedFuture<()>> = Vec::new();
    for &b in &src_blocks {
        dat_old.deps().collect_block(b, false, &mut deps);
    }
    for &b in &dst_blocks {
        dat_new.deps().collect_block(b, true, &mut deps);
    }
    let gather_rows: Arc<[u32]> = Arc::from(src_rows.as_slice());
    let land_rows: Arc<[u32]> = Arc::from(dst_rows.as_slice());
    let (old, new) = (dat_old.clone(), dat_new.clone());
    let fut = schedule_after(hooks.runtime(), &deps, move || {
        let dim = old.dim();
        let mut vals = Vec::with_capacity(gather_rows.len() * dim);
        for &row in gather_rows.iter() {
            // SAFETY: scheduled after every pending writer of the gathered
            // blocks and registered as their reader, so the rows are
            // stable while this node runs.
            unsafe { old.append_row_to(row as usize, &mut vals) };
        }
        // SAFETY: scheduled after every pending reader/writer of the
        // landing blocks and registered as their writer — exclusive
        // access to the listed rows.
        unsafe { new.scatter_row_list_from(&land_rows, &vals) };
    });
    for &b in &src_blocks {
        dat_old.deps().record_block(b, false, send_gen, &fut);
    }
    for &b in &dst_blocks {
        dat_new.deps().record_block(b, true, recv_gen, &fut);
    }
    hooks.track(fut.clone());
    fut
}

/// The receive half of one cross-process move: gated on the transport
/// delivery plus the landing rows' pending accesses, registered as their
/// writer. An abandoned move degrades to a diagnostic no-op, like an
/// abandoned halo exchange — the sender's original failure reaches the
/// fence.
#[allow(clippy::too_many_arguments)]
fn schedule_migrate_recv<T: OpType>(
    src: usize,
    dst: usize,
    dst_hooks: &CommHooks,
    dat_new: &Dat<T>,
    dst_rows: &[u32],
    recv_gen: u64,
    seq: u64,
    transport: &Arc<dyn Transport>,
) -> SharedFuture<()> {
    assert!(
        dst_rows
            .iter()
            .all(|&r| (r as usize) < dat_new.set().size()),
        "move {src}->{dst}: landings must be owned rows of '{}'",
        dat_new.name()
    );
    let delivery = transport.recv(MsgKind::Migrate, src, dst, seq);
    let blocks = blocks_of(dst_rows, dat_new.dep_block_size());
    let mut deps: Vec<SharedFuture<()>> = Vec::new();
    for &b in &blocks {
        dat_new.deps().collect_block(b, true, &mut deps);
    }
    deps.push(delivery.ready().clone());
    let land_rows: Arc<[u32]> = Arc::from(dst_rows);
    let new = dat_new.clone();
    let fut = schedule_after(dst_hooks.runtime(), &deps, move || {
        let dim = new.dim();
        match delivery.take() {
            Some(bytes) => {
                let vals: Vec<T> = decode_scalars(&bytes);
                assert_eq!(vals.len(), land_rows.len() * dim, "migration payload size");
                // SAFETY: scheduled after every pending reader/writer of
                // the landing blocks and registered as their writer.
                unsafe { new.scatter_row_list_from(&land_rows, &vals) };
            }
            None => {
                hpx_rt::static_counter!("op2.transport.recvs_abandoned")
                    .fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "op2-rebalance: move {src}->{dst} abandoned by the sender; \
                     rows of '{}' left at their initial values",
                    new.name()
                );
            }
        }
    });
    for &b in &blocks {
        dat_new.deps().record_block(b, true, recv_gen, &fut);
    }
    dst_hooks.track(fut.clone());
    fut
}

/// Sorted, deduplicated dependency-block indices of a row list.
fn blocks_of(rows: &[u32], block_size: usize) -> Vec<usize> {
    let bsz = block_size.max(1);
    let mut blocks: Vec<usize> = rows.iter().map(|&r| r as usize / bsz).collect();
    blocks.sort_unstable();
    blocks.dedup();
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_ratio_basics() {
        assert_eq!(imbalance_ratio(&[]), None);
        assert_eq!(imbalance_ratio(&[10, 0]), None, "unmeasured rank");
        assert_eq!(imbalance_ratio(&[5, 5, 5]), Some(1.0));
        assert_eq!(imbalance_ratio(&[30, 10, 20]), Some(1.5));
    }

    #[test]
    fn cost_levels_dead_zone_and_quantization() {
        // Balanced (inside the dead zone): no migration.
        assert_eq!(cost_levels(&[100, 110], &[10, 10], 1.5), None);
        // Unmeasured or empty rank: no decision.
        assert_eq!(cost_levels(&[100, 0], &[10, 10], 1.5), None);
        assert_eq!(cost_levels(&[100, 100], &[10, 0], 1.5), None);
        // 3x skew quantizes to levels [3, 1].
        assert_eq!(cost_levels(&[300, 100], &[10, 10], 1.5), Some(vec![3, 1]));
        // Equal counts, equal busy — even with a tiny dead zone the equal
        // levels suppress migration.
        assert_eq!(cost_levels(&[100, 100], &[10, 10], 1.0), None);
    }

    #[test]
    fn migration_spec_diff_covers_every_row() {
        // 6 elements; rank 0 gives element 2 to rank 1.
        let old = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let new = vec![vec![0, 1], vec![2, 3, 4, 5]];
        let spec = MigrationSpec::diff(&old, &new);
        assert_eq!(spec.nranks, 2);
        // Rank 0 keeps rows 0,1 at the same local rows.
        assert_eq!(spec.moves[0][0], (vec![0, 1], vec![0, 1]));
        // Element 2 was rank 0's local row 2 and becomes rank 1's local
        // row 0; rank 1's kept elements shift down by one local row.
        assert_eq!(spec.moves[0][1], (vec![2], vec![0]));
        assert_eq!(spec.moves[1][1], (vec![0, 1, 2], vec![1, 2, 3]));
        assert!(spec.moves[1][0].0.is_empty());
        assert_eq!(spec.rows_crossing(), 1);
        let landed: usize = (0..2)
            .flat_map(|s| (0..2).map(move |d| (s, d)))
            .map(|(s, d)| spec.moves[s][d].1.len())
            .sum();
        assert_eq!(landed, 6, "every new-shard row is written exactly once");
    }
}
