//! Maps: connectivity between sets (paper §II-A, `op_decl_map`), plus the
//! cached block-reach tables the block-granular dataflow engine uses to
//! wire indirect arguments to the dependency blocks they actually touch.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::plan::{build_block_reach, BlockReach};
use crate::set::{Fnv, Set};
use crate::types::next_entity_id;

/// Cache of [`Map::touched_target_blocks`] results, keyed by
/// `(slot, target block size)`.
type TouchedCache = Mutex<HashMap<(usize, usize), Arc<Vec<u32>>>>;

#[derive(Debug)]
pub(crate) struct MapInner {
    pub id: u64,
    pub from: Set,
    pub to: Set,
    pub dim: usize,
    pub indices: Vec<u32>,
    pub name: String,
    /// Content signature — see [`Map::signature`].
    pub signature: u64,
    /// Target rows beyond `to.size()` the table may index — the halo
    /// mirror region of a sharded dat (see [`crate::locality`]). 0 for
    /// ordinary single-locality maps.
    pub halo_targets: usize,
    /// Block-reach tables keyed by `(slot, from block size, to block
    /// size)`; computed on first use, shared by every loop over this map.
    reach: Mutex<HashMap<(usize, usize, usize), Arc<BlockReach>>>,
    /// Sorted, deduplicated union of the target dependency blocks one slot
    /// reaches, keyed by `(slot, to block size)` — the block-reach table
    /// collapsed over source blocks. The implicit halo-exchange engine
    /// intersects it with a peer's import-block range to decide whether a
    /// loop through this map can observe that halo at all.
    touched: TouchedCache,
}

/// A declared mapping of arity `dim` from one set to another, e.g. the
/// paper's `pedge` map from edges to their 2 nodes. Cheap to clone.
#[derive(Debug, Clone)]
pub struct Map {
    inner: Arc<MapInner>,
}

impl Map {
    pub(crate) fn new(from: &Set, to: &Set, dim: usize, indices: Vec<u32>, name: &str) -> Self {
        Self::with_halo(from, to, dim, indices, name, 0)
    }

    /// A map whose table may additionally index `halo_targets` rows beyond
    /// `to.size()` — the halo mirror region of sharded dats declared with
    /// [`crate::Op2::decl_dat_halo`].
    pub(crate) fn with_halo(
        from: &Set,
        to: &Set,
        dim: usize,
        indices: Vec<u32>,
        name: &str,
        halo_targets: usize,
    ) -> Self {
        assert!(dim > 0, "map '{name}': dim must be positive");
        assert_eq!(
            indices.len(),
            from.size() * dim,
            "map '{name}': expected {} indices ({} x {dim}), got {}",
            from.size() * dim,
            from.size(),
            indices.len()
        );
        let max_target = (to.size() + halo_targets) as u32;
        for (pos, &t) in indices.iter().enumerate() {
            assert!(
                t < max_target,
                "map '{name}': index {t} at position {pos} out of range for target set '{}' of size {} (+{halo_targets} halo)",
                to.name(),
                to.size()
            );
        }
        // Content signature: the cached dataflow schedules keyed on it
        // embed colorings derived from the actual index table, so the
        // table's contents — not just the endpoint shapes — must be part
        // of the identity.
        let mut sig = Fnv::new()
            .bytes(name.as_bytes())
            .u64(dim as u64)
            .u64(from.signature())
            .u64(to.signature())
            .u64(halo_targets as u64);
        for &t in &indices {
            sig = sig.u64(t as u64);
        }
        Map {
            inner: Arc::new(MapInner {
                id: next_entity_id(),
                from: from.clone(),
                to: to.clone(),
                dim,
                indices,
                name: name.to_owned(),
                signature: sig.finish(),
                halo_targets,
                reach: Mutex::new(HashMap::new()),
                touched: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The dependency blocks of the target set touched by each
    /// `from_bs`-sized source block through `slot` (cached; see
    /// [`crate::plan::build_block_reach`]).
    pub(crate) fn block_reach(&self, slot: usize, from_bs: usize, to_bs: usize) -> Arc<BlockReach> {
        let key = (slot, from_bs, to_bs);
        if let Some(r) = self.inner.reach.lock().get(&key) {
            return Arc::clone(r);
        }
        let built = Arc::new(build_block_reach(self, slot, from_bs, to_bs));
        Arc::clone(
            self.inner
                .reach
                .lock()
                .entry(key)
                .or_insert_with(|| Arc::clone(&built)),
        )
    }

    /// The sorted set of `to_bs`-sized target dependency blocks reachable
    /// through `slot` from *any* source element (cached per key).
    pub(crate) fn touched_target_blocks(&self, slot: usize, to_bs: usize) -> Arc<Vec<u32>> {
        let key = (slot, to_bs.max(1));
        if let Some(t) = self.inner.touched.lock().get(&key) {
            return Arc::clone(t);
        }
        let mut blocks: Vec<u32> = (0..self.inner.from.size())
            .map(|e| (self.at(e, slot) / key.1) as u32)
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        let built = Arc::new(blocks);
        Arc::clone(
            self.inner
                .touched
                .lock()
                .entry(key)
                .or_insert_with(|| Arc::clone(&built)),
        )
    }

    /// True when `slot` reaches at least one target dependency block in
    /// `block_range` (block indices for `to_bs`-sized blocks).
    pub(crate) fn reaches_target_blocks(
        &self,
        slot: usize,
        to_bs: usize,
        block_range: std::ops::Range<usize>,
    ) -> bool {
        if block_range.is_empty() {
            return false;
        }
        let touched = self.touched_target_blocks(slot, to_bs);
        let start = touched.partition_point(|&b| (b as usize) < block_range.start);
        touched
            .get(start)
            .is_some_and(|&b| (b as usize) < block_range.end)
    }

    /// Target element for source element `e`, slot `k` (`k < dim`).
    #[inline(always)]
    pub fn at(&self, e: usize, k: usize) -> usize {
        debug_assert!(k < self.inner.dim);
        self.inner.indices[e * self.inner.dim + k] as usize
    }

    /// Source set.
    pub fn from_set(&self) -> &Set {
        &self.inner.from
    }

    /// Target set.
    pub fn to_set(&self) -> &Set {
        &self.inner.to
    }

    /// Halo rows beyond the target set the table may index (0 for
    /// ordinary maps).
    #[inline]
    pub fn halo_targets(&self) -> usize {
        self.inner.halo_targets
    }

    /// Total addressable target rows: `to_set().size() + halo_targets()`.
    /// This — not the target set size — bounds the table's indices, and is
    /// what the planner sizes its conflict masks by.
    #[inline]
    pub fn target_rows(&self) -> usize {
        self.inner.to.size() + self.inner.halo_targets
    }

    /// Arity of the mapping.
    #[inline]
    pub fn dim(&self) -> usize {
        self.inner.dim
    }

    /// Declared name (diagnostics).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    pub(crate) fn id(&self) -> u64 {
        self.inner.id
    }

    /// Content signature: a stable hash of the map's name, arity, endpoint
    /// set signatures, halo extent and **the full index table**. Two maps
    /// declared identically in different [`Op2`](crate::Op2) worlds share a
    /// signature, so loop shapes over them share warm-cache entries (see
    /// [`Set::signature`]); any difference in connectivity — which changes
    /// coloring — changes the signature.
    pub fn signature(&self) -> u64 {
        self.inner.signature
    }

    /// The raw index table (row-major, `from.size()` rows of `dim`).
    pub fn indices(&self) -> &[u32] {
        &self.inner.indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets() -> (Set, Set) {
        (Set::new(4, "edges"), Set::new(3, "nodes"))
    }

    #[test]
    fn lookup() {
        let (edges, nodes) = sets();
        let m = Map::new(&edges, &nodes, 2, vec![0, 1, 1, 2, 2, 0, 0, 2], "pedge");
        assert_eq!(m.at(0, 0), 0);
        assert_eq!(m.at(0, 1), 1);
        assert_eq!(m.at(3, 1), 2);
        assert_eq!(m.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_targets() {
        let (edges, nodes) = sets();
        let _ = Map::new(&edges, &nodes, 1, vec![0, 1, 2, 3], "bad");
    }

    #[test]
    fn halo_targets_extend_the_index_range() {
        let (edges, nodes) = sets();
        // Index 3 is out of range for the 3-node set but inside the halo.
        let m = Map::with_halo(&edges, &nodes, 1, vec![0, 1, 2, 3], "pecell", 1);
        assert_eq!(m.halo_targets(), 1);
        assert_eq!(m.target_rows(), 4);
        assert_eq!(m.at(3, 0), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn halo_bound_is_still_enforced() {
        let (edges, nodes) = sets();
        let _ = Map::with_halo(&edges, &nodes, 1, vec![0, 1, 2, 4], "bad", 1);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn rejects_wrong_length() {
        let (edges, nodes) = sets();
        let _ = Map::new(&edges, &nodes, 2, vec![0, 1], "short");
    }

    #[test]
    fn signature_tracks_contents() {
        let (edges, nodes) = sets();
        let table = vec![0, 1, 1, 2, 2, 0, 0, 2];
        let a = Map::new(&edges, &nodes, 2, table.clone(), "pedge");
        let b = Map::new(&edges, &nodes, 2, table.clone(), "pedge");
        assert_eq!(a.signature(), b.signature(), "identical declarations");
        let mut other = table.clone();
        other[7] = 1;
        let c = Map::new(&edges, &nodes, 2, other, "pedge");
        assert_ne!(a.signature(), c.signature(), "index table is hashed");
        let d = Map::new(&edges, &nodes, 2, table, "pecell");
        assert_ne!(a.signature(), d.signature(), "name is hashed");
    }
}
