//! Sets: the iteration domains of unstructured-mesh computation
//! (paper §II-A: "Sets can be nodes, edges or faces").

use std::sync::Arc;

use crate::types::next_entity_id;

#[derive(Debug)]
pub(crate) struct SetInner {
    pub id: u64,
    pub size: usize,
    pub name: String,
}

/// A declared set (`op_decl_set`). Cheap to clone (an `Arc` handle).
#[derive(Debug, Clone)]
pub struct Set {
    inner: Arc<SetInner>,
}

impl Set {
    pub(crate) fn new(size: usize, name: &str) -> Self {
        Set {
            inner: Arc::new(SetInner {
                id: next_entity_id(),
                size,
                name: name.to_owned(),
            }),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Declared name (diagnostics).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    pub(crate) fn id(&self) -> u64 {
        self.inner.id
    }

    /// True when both handles denote the same declared set.
    pub fn same(&self, other: &Set) -> bool {
        self.inner.id == other.inner.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_identity() {
        let a = Set::new(10, "nodes");
        let b = a.clone();
        let c = Set::new(10, "nodes");
        assert!(a.same(&b));
        assert!(!a.same(&c), "distinct declarations are distinct sets");
        assert_eq!(a.size(), 10);
        assert_eq!(a.name(), "nodes");
    }
}
