//! Sets: the iteration domains of unstructured-mesh computation
//! (paper §II-A: "Sets can be nodes, edges or faces").

use std::sync::Arc;

use crate::types::next_entity_id;

#[derive(Debug)]
pub(crate) struct SetInner {
    pub id: u64,
    pub size: usize,
    pub name: String,
    /// Content signature — see [`Set::signature`].
    pub signature: u64,
}

/// FNV-1a over a byte stream — the stable, dependency-free content hash
/// set/map signatures are built from.
#[derive(Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

/// A declared set (`op_decl_set`). Cheap to clone (an `Arc` handle).
#[derive(Debug, Clone)]
pub struct Set {
    inner: Arc<SetInner>,
}

impl Set {
    pub(crate) fn new(size: usize, name: &str) -> Self {
        let signature = Fnv::new().bytes(name.as_bytes()).u64(size as u64).finish();
        Set {
            inner: Arc::new(SetInner {
                id: next_entity_id(),
                size,
                name: name.to_owned(),
                signature,
            }),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Declared name (diagnostics).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    pub(crate) fn id(&self) -> u64 {
        self.inner.id
    }

    /// Content signature of the set's **shape**: a stable hash of
    /// `(name, size)`. Unlike [`Set::same`] — which distinguishes every
    /// declaration — two sets declared with the same name and size in
    /// *different* [`Op2`](crate::Op2) worlds share a signature. The
    /// warm-state caches ([`SpecCache`](crate::SpecShare) schedules, the
    /// [`hpx_rt::GranularityFeedback`] cost table) key on it, so tenants of
    /// a [`farm::SolverFarm`](crate::farm::SolverFarm) running the same
    /// solver shape hit each other's warm entries.
    pub fn signature(&self) -> u64 {
        self.inner.signature
    }

    /// True when both handles denote the same declared set.
    pub fn same(&self, other: &Set) -> bool {
        self.inner.id == other.inner.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_identity() {
        let a = Set::new(10, "nodes");
        let b = a.clone();
        let c = Set::new(10, "nodes");
        assert!(a.same(&b));
        assert!(!a.same(&c), "distinct declarations are distinct sets");
        assert_eq!(a.size(), 10);
        assert_eq!(a.name(), "nodes");
    }

    #[test]
    fn signature_is_shape_not_identity() {
        let a = Set::new(10, "nodes");
        let b = Set::new(10, "nodes");
        let c = Set::new(11, "nodes");
        let d = Set::new(10, "cells");
        assert_eq!(a.signature(), b.signature(), "same shape, same signature");
        assert_ne!(a.signature(), c.signature(), "size is part of the shape");
        assert_ne!(a.signature(), d.signature(), "name is part of the shape");
    }
}
