//! # op2-core — the OP2 unstructured-mesh loop framework on hpx-rt
//!
//! Reproduction of the system described in *"Redesigning OP2 Compiler to
//! Use HPX Runtime Asynchronous Techniques"* (Khatami, Kaiser, Ramanujam;
//! IPDPSW 2017): the OP2 "active library" data model (sets, maps, dats,
//! access-described loop arguments), OP2's shared-memory execution plans
//! (mini-partition blocks + greedy coloring for indirect increments), and
//! two parallel backends —
//!
//! * [`Backend::ForkJoin`]: the `#pragma omp parallel for` baseline with a
//!   global barrier after every loop, and
//! * [`Backend::Dataflow`]: the paper's redesign at *block granularity* —
//!   every `op_par_loop` becomes one dataflow node per mini-partition
//!   block, wired through per-block epoch tables (see [`crate::Dat`]) to
//!   only the predecessor blocks it touches, so independent loops
//!   interleave and dependent loops *pipeline*: a successor's blocks start
//!   while its RAW predecessor is still finishing.
//!
//! ```
//! use op2_core::args::{read, write};
//! use op2_core::{Op2, Op2Config};
//!
//! let op2 = Op2::new(Op2Config::dataflow(2));
//! let cells = op2.decl_set(100, "cells");
//! let q = op2.decl_dat(&cells, 4, "q", vec![1.0f64; 400]);
//! let qold = op2.decl_dat(&cells, 4, "qold", vec![0.0f64; 400]);
//!
//! // op_par_loop_save_soln (paper Fig 3) through the arity-free builder:
//! // returns a future-backed handle.
//! let h = op2.loop_("save_soln", &cells)
//!     .arg(read(&q))
//!     .arg(write(&qold))
//!     .run(|q: &[f64], qold: &mut [f64]| qold.copy_from_slice(q));
//! h.wait();
//! assert_eq!(qold.snapshot(), vec![1.0; 400]);
//! ```
//!
//! At distributed scale the access descriptors also drive **implicit halo
//! exchange**: [`locality::link_halo`] ties the per-rank shards of one
//! logical dat together with per-peer dirty bits, after which loop
//! submission alone schedules every needed gather/send/scatter — see the
//! dirty-bit protocol in [`locality`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod arg;
mod config;
pub mod convergence;
mod dat;
pub mod diag;
mod driver;
pub mod farm;
mod gbl;
pub mod locality;
mod map;
mod par_loop;
pub mod plan;
pub mod rebalance;
mod set;
pub mod transport;
mod types;
mod world;

pub use arg::{
    arg_gbl_inc, arg_gbl_read, arg_inc, arg_inc_via, arg_read, arg_read_via, arg_rw, arg_rw_via,
    arg_write, arg_write_via, AccessTag, ArgInfo, ArgKind, ArgSpec, BlockCtx, DatArg, GblIncArg,
    GblReadArg, IncTag, ReadTag, RwTag, WriteTag,
};
pub use config::{Backend, Op2Config, DEFAULT_BLOCK_SIZE};
pub use convergence::{Convergence, ResidualMap};
pub use dat::{Dat, DatReadGuard, DatWriteGuard, Layout};
pub use driver::{
    __dataflow_direct_blocks, __dataflow_resolved_block_size, plan_for, LoopHandle, SpecShare,
    DEFAULT_SPEC_CAPACITY,
};
pub use gbl::{Global, ReduceOp, ReducedFuture, Reducible};
pub use map::Map;
pub use par_loop::ParLoop;
pub use plan::{validate_coloring, Plan};
pub use set::Set;
pub use types::{Access, OpType};
pub use world::{LoopStat, Op2};

/// Short argument-constructor names for v2 builder call-sites:
/// `op2.loop_("res_calc", &edges).arg(read_via(&x, &m, 0))…`. Aliases of
/// the `arg_*` constructors (`op_arg_dat` / `op_arg_gbl`).
pub mod args {
    pub use crate::arg::{
        arg_gbl_inc as gbl_inc, arg_gbl_read as gbl_read, arg_inc as inc, arg_inc_via as inc_via,
        arg_read as read, arg_read_via as read_via, arg_rw as rw, arg_rw_via as rw_via,
        arg_write as write, arg_write_via as write_via,
    };
}

// Downstream crates (airfoil, benches) need the runtime types.
pub use hpx_rt;
