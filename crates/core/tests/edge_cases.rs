//! Edge-case coverage of the OP2 layer: broadcast globals, direct
//! increments, future handles as explicit dataflow inputs, tiny sets,
//! measuring chunkers under fork-join, and min/max reductions.

use op2_core::hpx_rt::dataflow;
use op2_core::{
    arg_gbl_inc, arg_gbl_read, arg_inc, arg_read, arg_write, Global, Op2, Op2Config, ReduceOp,
};

#[test]
fn gbl_read_broadcasts_current_value() {
    for config in [
        Op2Config::seq(),
        Op2Config::fork_join(2),
        Op2Config::dataflow(2),
    ] {
        let op2 = Op2::new(config);
        let cells = op2.decl_set(1000, "cells");
        let x = op2.decl_dat(&cells, 1, "x", vec![0.0f64; 1000]);
        let scale = Global::<f64>::sum(1, "scale");
        scale.set(&[2.5]);
        op2.loop_("broadcast", &cells)
            .arg(arg_gbl_read(&scale))
            .arg(arg_write(&x))
            .run(|s: &[f64], x: &mut [f64]| x[0] = s[0] * 2.0)
            .wait();
        assert!(x.snapshot().iter().all(|&v| v == 5.0));
    }
}

#[test]
fn gbl_inc_after_gbl_read_orders_correctly_under_dataflow() {
    let op2 = Op2::new(Op2Config::dataflow(2));
    let cells = op2.decl_set(10_000, "cells");
    let x = op2.decl_dat(&cells, 1, "x", vec![1.0f64; 10_000]);
    let g = Global::<f64>::sum(1, "g");
    // Loop 1 accumulates into g; loop 2 broadcasts g into x. The pending
    // future must serialize them even though both are async.
    op2.loop_("accumulate", &cells)
        .arg(arg_read(&x))
        .arg(arg_gbl_inc(&g))
        .run(|x: &[f64], g: &mut [f64]| g[0] += x[0]);
    op2.loop_("broadcast", &cells)
        .arg(arg_gbl_read(&g))
        .arg(arg_write(&x))
        .run(|g: &[f64], x: &mut [f64]| x[0] = g[0]);
    op2.fence();
    assert!(x.snapshot().iter().all(|&v| v == 10_000.0));
}

#[test]
fn direct_increment_accumulates() {
    let op2 = Op2::new(Op2Config::fork_join(2));
    let cells = op2.decl_set(5000, "cells");
    let acc = op2.decl_dat(&cells, 2, "acc", vec![1.0f64; 10_000]);
    for _ in 0..3 {
        op2.loop_("bump", &cells)
            .arg(arg_inc(&acc))
            .run(|a: &mut [f64]| {
                a[0] += 1.0;
                a[1] += 2.0;
            })
            .wait();
    }
    let snap = acc.snapshot();
    assert!(snap.chunks_exact(2).all(|c| c == [4.0, 7.0]));
}

#[test]
fn loop_handle_future_feeds_hpx_dataflow() {
    let op2 = Op2::new(Op2Config::dataflow(2));
    let cells = op2.decl_set(1000, "cells");
    let x = op2.decl_dat(&cells, 1, "x", vec![3.0f64; 1000]);
    let h = op2
        .loop_("triple", &cells)
        .arg(op2_core::arg_rw(&x))
        .run(|x: &mut [f64]| {
            x[0] *= 3.0;
        });
    // The loop's completion future is a first-class dataflow input.
    let x2 = x.clone();
    let summed = dataflow(
        op2.runtime(),
        move |((),)| x2.snapshot().iter().sum::<f64>(),
        (h.future(),),
    );
    assert_eq!(summed.get(), 9.0 * 1000.0);
}

#[test]
fn single_element_set() {
    for config in [
        Op2Config::seq(),
        Op2Config::fork_join(2),
        Op2Config::dataflow(2),
    ] {
        let op2 = Op2::new(config);
        let s = op2.decl_set(1, "one");
        let d = op2.decl_dat(&s, 3, "d", vec![1.0f64, 2.0, 3.0]);
        op2.loop_("negate", &s)
            .arg(op2_core::arg_rw(&d))
            .run(|v: &mut [f64]| {
                for x in v {
                    *x = -*x;
                }
            })
            .wait();
        assert_eq!(d.snapshot(), vec![-1.0, -2.0, -3.0]);
    }
}

#[test]
fn fork_join_with_measuring_chunker_is_correct() {
    use op2_core::hpx_rt::ChunkPolicy;
    let op2 = Op2::new(Op2Config::fork_join(2).with_chunk(ChunkPolicy::default()));
    let cells = op2.decl_set(50_000, "cells");
    let x = op2.decl_dat(&cells, 1, "x", vec![1.0f64; 50_000]);
    let total = Global::<f64>::sum(1, "total");
    op2.loop_("sum", &cells)
        .arg(arg_read(&x))
        .arg(arg_gbl_inc(&total))
        .run(|x: &[f64], t: &mut [f64]| t[0] += x[0])
        .wait();
    assert_eq!(total.get_scalar(), 50_000.0);
}

#[test]
fn min_and_max_globals() {
    let op2 = Op2::new(Op2Config::dataflow(2));
    let cells = op2.decl_set(10_000, "cells");
    let vals: Vec<f64> = (0..10_000).map(|i| ((i * 7919) % 10_007) as f64).collect();
    let x = op2.decl_dat(&cells, 1, "x", vals.clone());
    let lo = Global::<f64>::new(1, ReduceOp::Min, "lo");
    let hi = Global::<f64>::new(1, ReduceOp::Max, "hi");
    op2.loop_("minmax", &cells)
        .arg(arg_read(&x))
        .arg(arg_gbl_inc(&lo))
        .arg(arg_gbl_inc(&hi))
        .run(|x: &[f64], lo: &mut [f64], hi: &mut [f64]| {
            if x[0] < lo[0] {
                lo[0] = x[0];
            }
            if x[0] > hi[0] {
                hi[0] = x[0];
            }
        })
        .wait();
    let expect_lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let expect_hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(lo.get_scalar(), expect_lo);
    assert_eq!(hi.get_scalar(), expect_hi);
}

#[test]
fn stats_and_plan_counters_track_work() {
    let op2 = Op2::new(Op2Config::dataflow(2));
    let cells = op2.decl_set(100, "cells");
    let x = op2.decl_dat(&cells, 1, "x", vec![0.0f64; 100]);
    for _ in 0..5 {
        op2.loop_("touch", &cells)
            .arg(arg_write(&x))
            .run(|x: &mut [f64]| {
                x[0] += 1.0;
            });
    }
    op2.fence();
    let stats = op2.loop_stats();
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].1.invocations, 5);
    // Direct loops build no plans.
    assert_eq!(op2.plan_cache_stats().0, 0);
}

#[test]
fn fence_propagates_kernel_panics() {
    let op2 = Op2::new(Op2Config::dataflow(2));
    let cells = op2.decl_set(100, "cells");
    let x = op2.decl_dat(&cells, 1, "x", vec![0.0f64; 100]);
    op2.loop_("boom", &cells)
        .arg(arg_write(&x))
        .run(|_: &mut [f64]| {
            panic!("deferred kernel failure");
        });
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| op2.fence()))
        .expect_err("fence must re-panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "?".into());
    assert!(msg.contains("deferred kernel failure"), "got: {msg}");
}

#[test]
fn read_guard_waits_for_pending_writer() {
    // Under the dataflow backend, a read guard taken right after an async
    // loop submission must observe the loop's writes.
    let op2 = Op2::new(Op2Config::dataflow(2));
    let cells = op2.decl_set(200_000, "cells");
    let x = op2.decl_dat(&cells, 1, "x", vec![0.0f64; 200_000]);
    op2.loop_("fill", &cells)
        .arg(arg_write(&x))
        .run(|x: &mut [f64]| {
            x[0] = 42.0;
        });
    let guard = x.read(); // must block on the loop's completion future
    assert!(guard.iter().all(|&v| v == 42.0));
}

#[test]
fn row_accessors_match_flat_layout() {
    let op2 = Op2::new(Op2Config::seq());
    let cells = op2.decl_set(3, "cells");
    let d = op2.decl_dat(&cells, 2, "d", vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    {
        let mut w = d.write();
        w.row_mut(1)[0] = 30.0;
    }
    let r = d.read();
    assert_eq!(r.row(0), &[1.0, 2.0]);
    assert_eq!(r.row(1), &[30.0, 4.0]);
    assert_eq!(r.row(2), &[5.0, 6.0]);
}
