//! The deprecated `par_loopN` arity family must keep working as thin
//! shims over the arity-free builder — this is the only call-site of the
//! legacy surface left in the tree (CI greps for strays).
#![allow(deprecated)]

use op2_core::{arg_inc_via, arg_read, arg_write, par_loop2, par_loop3, Op2, Op2Config};

#[test]
fn par_loop2_shim_matches_builder() {
    let op2 = Op2::new(Op2Config::dataflow(2));
    let cells = op2.decl_set(500, "cells");
    let a = op2.decl_dat(&cells, 1, "a", (0..500).map(|i| i as f64).collect());
    let b = op2.decl_dat(&cells, 1, "b", vec![0.0f64; 500]);
    let c = op2.decl_dat(&cells, 1, "c", vec![0.0f64; 500]);
    par_loop2(
        &op2,
        "shim",
        &cells,
        (arg_read(&a), arg_write(&b)),
        |a: &[f64], b: &mut [f64]| b[0] = a[0] * 2.0,
    )
    .wait();
    op2.loop_("builder", &cells)
        .arg(arg_read(&a))
        .arg(arg_write(&c))
        .run(|a: &[f64], c: &mut [f64]| c[0] = a[0] * 2.0)
        .wait();
    assert_eq!(b.snapshot(), c.snapshot());
    // The shim routes through the builder, so both invocations share the
    // loop-name-keyed bookkeeping paths.
    let stats = op2.loop_stats();
    assert_eq!(stats.len(), 2);
}

#[test]
fn par_loop3_shim_runs_indirect_increments() {
    let op2 = Op2::new(Op2Config::fork_join(2));
    let n = 300;
    let edges = op2.decl_set(n, "edges");
    let nodes = op2.decl_set(n, "nodes");
    let mut idx = Vec::with_capacity(2 * n);
    for e in 0..n {
        idx.push(e as u32);
        idx.push(((e + 1) % n) as u32);
    }
    let m = op2.decl_map(&edges, &nodes, 2, idx, "pedge");
    let acc = op2.decl_dat(&nodes, 1, "acc", vec![0.0f64; n]);
    let w = op2.decl_dat(&edges, 1, "w", vec![1.0f64; n]);
    par_loop3(
        &op2,
        "scatter",
        &edges,
        (
            arg_read(&w),
            arg_inc_via(&acc, &m, 0),
            arg_inc_via(&acc, &m, 1),
        ),
        |w: &[f64], a: &mut [f64], b: &mut [f64]| {
            a[0] += w[0];
            b[0] += w[0];
        },
    )
    .wait();
    assert!(acc.snapshot().iter().all(|&v| v == 2.0));
}
