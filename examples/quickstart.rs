//! Quickstart: the exact mesh of the paper's Fig 1 — 9 nodes, 12 edges —
//! declared through the OP2 API, with one gather loop and one indirect
//! increment loop executed by the dataflow backend.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use op2_hpx::op2::args::{inc_via, read, read_via, write};
use op2_hpx::op2::{Op2, Op2Config};

fn main() {
    let op2 = Op2::new(Op2Config::dataflow(2));

    // op_decl_set(9, nodes); op_decl_set(12, edges)  — paper §II-A.
    let nodes = op2.decl_set(9, "nodes");
    let edges = op2.decl_set(12, "edges");

    // The 12 edges of a 3x3 node grid (the paper's edge_map).
    let edge_map: Vec<u32> = vec![
        0, 1, 1, 2, 2, 5, 5, 4, 4, 3, 3, 6, 6, 7, 7, 8, 0, 3, 1, 4, 2, 5, 3, 6,
    ];
    let pedge = op2.decl_map(&edges, &nodes, 2, edge_map, "pedge");

    // Data on nodes (the paper's valueNode) and on edges.
    let value_node = vec![5.3, 1.2, 0.2, 3.4, 5.4, 6.2, 3.2, 2.5, 0.9];
    let data_node = op2.decl_dat(&nodes, 1, "data_node", value_node);
    let data_edge = op2.decl_dat(&edges, 1, "data_edge", vec![0.0f64; 12]);
    let degree_sum = op2.decl_dat(&nodes, 1, "degree_sum", vec![0.0f64; 9]);

    // Loop 1: gather — every edge averages its two node values. The
    // arity-free builder carries one `.arg` per access descriptor.
    let h1 = op2
        .loop_("edge_average", &edges)
        .arg(read_via(&data_node, &pedge, 0))
        .arg(read_via(&data_node, &pedge, 1))
        .arg(write(&data_edge))
        .run(|a: &[f64], b: &[f64], out: &mut [f64]| out[0] = 0.5 * (a[0] + b[0]));

    // Loop 2: indirect increment — every edge scatters its value back to
    // both endpoints (this forces plan coloring). Because it reads
    // `data_edge`, the dataflow backend automatically chains it after
    // loop 1 — no barrier in sight.
    let h2 = op2
        .loop_("scatter_back", &edges)
        .arg(read(&data_edge))
        .arg(inc_via(&degree_sum, &pedge, 0))
        .arg(inc_via(&degree_sum, &pedge, 1))
        .run(|e: &[f64], n0: &mut [f64], n1: &mut [f64]| {
            n0[0] += e[0];
            n1[0] += e[0];
        });

    h1.wait();
    h2.wait();

    println!("edge averages: {:?}", data_edge.snapshot());
    println!("node sums:     {:?}", degree_sum.snapshot());
    let (plans, hits) = op2.plan_cache_stats();
    println!("plans built: {plans} (cache hits: {hits})");
}
