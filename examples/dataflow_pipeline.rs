//! Tour of the hpx-rt primitives the OP2 backend is built from: futures,
//! `dataflow` graphs, `when_all`, execution policies, and the paper's
//! `persistent_auto_chunk_size` — shown on a three-stage pipeline of
//! dependent parallel loops with *different* per-element costs.
//!
//! ```text
//! cargo run --release --example dataflow_pipeline
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use op2_hpx::hpx::{dataflow, par, par_task, reduce, ChunkPolicy, PersistentChunker, Runtime, Val};

fn main() {
    let rt = Runtime::new(2);

    // --- Futures and dataflow -------------------------------------------
    let a = rt.spawn_future(|| 6u64);
    let b = rt.spawn_future(|| 7u64);
    let product = dataflow(&rt, |(a, b, c)| a * b * c, (a, b, Val(1u64)));
    println!("dataflow(6, 7, Val(1)) = {}", product.get());

    // A diamond: one producer, two independent consumers, one join.
    let src = rt.spawn_future(|| (0..1000u64).sum::<u64>()).share();
    let left = src.then(&rt, |s| s / 2);
    let right = src.then(&rt, |s| s % 97);
    let joined = dataflow(&rt, |(l, r)| (l, r), (left, right));
    println!("diamond -> {:?}", joined.get());

    // --- A pipeline of dependent loops with persistent chunking ---------
    // Stage 1 is cheap per element, stage 2 is ~8x costlier, stage 3 is
    // a reduction. With `persistent_auto_chunk_size`, stage 1 calibrates
    // a per-chunk duration and the costlier stages automatically pick
    // smaller chunks of the *same duration* (paper Fig 12b).
    let n = 2_000_000usize;
    let chunker = PersistentChunker::new();
    let policy = par().with_chunk(ChunkPolicy::PersistentAuto(chunker.clone()));

    let data: Arc<Vec<f64>> = Arc::new((0..n).map(|i| (i % 1000) as f64).collect());
    let stage1 = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>());
    let stage2 = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>());

    // Stage 1: cheap transform.
    {
        let (d, s1) = (Arc::clone(&data), Arc::clone(&stage1));
        op2_hpx::hpx::for_each(&rt, &policy, 0..n, move |i| {
            s1[i].store((d[i] * 2.0).to_bits(), Ordering::Relaxed);
        });
    }
    println!(
        "calibrated chunk duration: {:?}",
        chunker.calibrated_target().expect("stage 1 calibrates")
    );

    // Stage 2: costlier per element (same chunk duration, smaller chunks).
    {
        let (s1, s2) = (Arc::clone(&stage1), Arc::clone(&stage2));
        op2_hpx::hpx::for_each(&rt, &policy, 0..n, move |i| {
            let x = f64::from_bits(s1[i].load(Ordering::Relaxed));
            let mut acc = x;
            for _ in 0..8 {
                acc = (acc * 1.0001 + 1.0).sqrt();
            }
            s2[i].store(acc.to_bits(), Ordering::Relaxed);
        });
    }

    // Stage 3: parallel reduction.
    let s2 = Arc::clone(&stage2);
    let total = reduce(
        &rt,
        &policy,
        0..n,
        0.0f64,
        move |i| f64::from_bits(s2[i].load(Ordering::Relaxed)),
        |a, b| a + b,
    );
    println!("pipeline result: {total:.3}");

    // --- Async loop: submit, keep working, then join ---------------------
    let counter = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&counter);
    let fut = op2_hpx::hpx::for_each_async(&rt, par_task(), 0..100_000, move |_| {
        c.fetch_add(1, Ordering::Relaxed);
    });
    println!("async loop submitted; doing other work...");
    let other = rt.spawn_future(|| "other work done");
    println!("{}", other.get());
    fut.get();
    println!(
        "async loop visited {} elements",
        counter.load(Ordering::Relaxed)
    );

    println!("runtime stats: {}", rt.stats());
}
