//! A second unstructured-mesh application on the OP2 API: explicit heat
//! diffusion on a triangulated unit square — an edge-based flux loop with
//! indirect increments (plan coloring), a Dirichlet boundary held at
//! zero, and a `ReduceOp::Max` global driving the stopping criterion.
//!
//! This is the translator-generated [`HeatApp`] (spec:
//! `crates/translator/specs/heat.op2`) driven through the generic
//! application harness: the `converge delta : tol 1e-6, every 50, max
//! 2000;` declaration in the spec replaces the old hand-rolled
//! blocking `delta.get_scalar()` poll — the harness's exit check
//! consults only already-resolved reduction futures, so the time loop
//! never blocks on the residual.
//!
//! ```text
//! cargo run --release --example heat_diffusion
//! ```

use op2_hpx::app::{run, App, HeatApp};
use op2_hpx::op2::{Op2, Op2Config};

fn main() {
    let app = HeatApp::new(64);
    let mesh = app.mesh();
    println!(
        "triangulated unit square: {} nodes, {} edges, {} triangles",
        mesh.nnode, mesh.nedge, mesh.ntri
    );

    let op2 = Op2::new(Op2Config::dataflow(2));
    let mut inst = app.declare(&op2);
    let initial_heat: f64 = inst.state().iter().sum();

    // The spec's convergence policy (tol 1e-6, checked every 50 iters,
    // capped at 2000); print the observed max change at the same cadence.
    let mut cfg = app.default_run();
    cfg.print_every = 50;
    let out = run(inst.as_mut(), cfg);

    let final_temps = inst.state();
    let final_heat: f64 = final_temps.iter().sum();
    match out.converged {
        Some((at, change)) => {
            println!("converged after {at} iterations (max change {change:.2e})")
        }
        None => println!(
            "hit the iteration cap at {} (last max change {:.2e})",
            out.iterations,
            out.final_residual()
        ),
    }
    println!("heat drained to the cold boundary: {initial_heat:.1} -> {final_heat:.3}");
    assert!(final_temps.iter().all(|t| t.is_finite() && *t >= -1e-9));
}
