//! A second unstructured-mesh application on the OP2 API: explicit heat
//! diffusion on a triangulated unit square — an edge-based flux loop with
//! indirect increments (plan coloring), a Dirichlet boundary held at
//! zero, and a `ReduceOp::Max` global driving the stopping criterion.
//!
//! Demonstrates that the framework generalizes beyond the Airfoil CFD
//! kernels: different topology (triangles), different sparsity, a
//! different reduction operator.
//!
//! ```text
//! cargo run --release --example heat_diffusion
//! ```

use op2_hpx::mesh::unit_square;
use op2_hpx::op2::args::{gbl_inc, inc_via, read, read_via, rw};
use op2_hpx::op2::{par_loop, Global, Op2, Op2Config, ReduceOp};

fn main() {
    let n = 64;
    let mesh = unit_square(n);
    println!(
        "triangulated unit square: {} nodes, {} edges, {} triangles",
        mesh.nnode, mesh.nedge, mesh.ntri
    );

    let op2 = Op2::new(Op2Config::dataflow(2));
    let nodes = op2.decl_set(mesh.nnode, "nodes");
    let edges = op2.decl_set(mesh.nedge, "edges");
    let pedge = op2.decl_map(&edges, &nodes, 2, mesh.edge_nodes.clone(), "pedge");

    // Initial condition: hot interior disc, cold boundary (held fixed).
    let temps: Vec<f64> = (0..mesh.nnode)
        .map(|v| {
            let (x, y) = (mesh.x[2 * v], mesh.x[2 * v + 1]);
            if ((x - 0.5).powi(2) + (y - 0.5).powi(2)).sqrt() < 0.25 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let initial_heat: f64 = temps.iter().sum();
    let temp = op2.decl_dat(&nodes, 1, "temp", temps);
    let flux = op2.decl_dat(&nodes, 1, "flux", vec![0.0f64; mesh.nnode]);
    let boundary = op2.decl_dat(&nodes, 1, "boundary", mesh.node_boundary.clone());

    // alpha / max-degree keeps the explicit scheme stable (interior nodes
    // of this triangulation have degree <= 8).
    let alpha = 0.1;
    let mut iters = 0usize;
    let max_change = loop {
        iters += 1;

        // Edge loop: gather both endpoint temperatures, scatter the
        // difference into both flux accumulators (indirect increments —
        // the dataflow backend colors and chains this automatically).
        par_loop!(
            op2,
            "edge_flux",
            &edges,
            [
                read_via(&temp, &pedge, 0),
                read_via(&temp, &pedge, 1),
                inc_via(&flux, &pedge, 0),
                inc_via(&flux, &pedge, 1),
            ],
            |t0: &[f64], t1: &[f64], f0: &mut [f64], f1: &mut [f64]| {
                let d = t1[0] - t0[0];
                f0[0] += d;
                f1[0] -= d;
            },
        );

        // Node loop: apply the flux (zero on the Dirichlet boundary),
        // reset it, and track the largest update.
        let delta = Global::<f64>::new(1, ReduceOp::Max, "delta");
        let h = op2
            .loop_("apply_flux", &nodes)
            .arg(rw(&temp))
            .arg(rw(&flux))
            .arg(read(&boundary))
            .arg(gbl_inc(&delta))
            .arg(read(&boundary)) // second read arg demonstrates arg reuse
            .run(
                move |t: &mut [f64], f: &mut [f64], b: &[i32], d: &mut [f64], _b2: &[i32]| {
                    if b[0] == 0 {
                        let change = alpha * f[0];
                        t[0] += change;
                        if change.abs() > d[0] {
                            d[0] = change.abs();
                        }
                    }
                    f[0] = 0.0;
                },
            );
        let _ = h;

        // Check convergence every 50 steps (the Global::get waits only on
        // its own loop's future, not on the whole pipeline).
        if iters.is_multiple_of(50) {
            let change = delta.get_scalar();
            println!("  iter {iters:5}: max change = {change:.3e}");
            if change < 1e-6 || iters >= 2000 {
                break change;
            }
        }
    };

    op2.fence();
    let final_temps = temp.snapshot();
    let final_heat: f64 = final_temps.iter().sum();
    println!("converged after {iters} iterations (max change {max_change:.2e})");
    println!("heat drained to the cold boundary: {initial_heat:.1} -> {final_heat:.3}");
    assert!(final_temps.iter().all(|t| t.is_finite() && *t >= -1e-9));
}
