//! Solver farm: many independent airfoil solves multiplexed onto ONE
//! shared runtime, with weighted-fair scheduling between tenants and
//! per-tenant backpressure. The second tenant's solve reuses the first
//! tenant's execution plans — warm state is keyed by mesh *shape*, not by
//! world identity.
//!
//! ```text
//! cargo run --release --example solver_farm
//! ```

use std::sync::Arc;

use op2_hpx::airfoil::{solve, SolverConfig};
use op2_hpx::mesh::QuadMesh;
use op2_hpx::op2::farm::{FarmConfig, Priority, SolverFarm};

fn main() {
    // One farm = one shared runtime + dispatcher lanes + warm-state pool.
    let farm = SolverFarm::new(FarmConfig::with_threads(4).with_lanes(2).with_window(2));

    // Tenants are scheduling principals: High gets 4x the dispatch share
    // of Low, and every tenant has a bounded in-flight window.
    let interactive = farm.register("interactive", Priority::High);
    let batch = farm.register("batch", Priority::Low);

    let mesh = Arc::new(QuadMesh::with_cells(1_000));
    let cfg = SolverConfig {
        niter: 20,
        window: 4,
        print_every: 0,
        ..SolverConfig::default()
    };

    // Submit a few solves per tenant. Each closure receives a fresh tenant
    // world on the shared runtime; `submit` parks once the tenant's
    // backpressure window is full.
    let mut handles = Vec::new();
    for (tenant, n) in [(&interactive, 3), (&batch, 2)] {
        for i in 0..n {
            let mesh = Arc::clone(&mesh);
            let cfg = cfg.clone();
            let name = format!("{tenant}#{i}");
            handles.push(farm.submit(tenant, move |op2| {
                let result = solve(op2, &mesh, &cfg);
                println!("{name}: final RMS {:.3e}", result.final_rms());
            }));
        }
    }

    for h in &handles {
        h.wait();
    }
    println!(
        "farm warm state: {} specs built, {} cross-world hits",
        farm.spec_share().built(),
        farm.spec_share().hits()
    );
}
