//! The prefetching iterator (paper §V) and the extra parallel algorithms:
//! a multi-container loop through `make_prefetcher_context` /
//! `for_each_prefetch`, then `inclusive_scan`, `min_element` and
//! `count_if` on the results.
//!
//! ```text
//! cargo run --release --example prefetch_scan
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use op2_hpx::hpx::{
    count_if, for_each_prefetch, inclusive_scan, make_prefetcher_context, min_element, par, Runtime,
};

fn main() {
    let rt = Runtime::new(2);
    let n = 1 << 21;

    // Three containers of different element types, exactly like the
    // paper's Fig 14 (`container_1[i] = …; container_2[i] = …`).
    let positions: Vec<f64> = (0..n).map(|i| (i as f64) * 0.001).collect();
    let masses: Vec<f32> = (0..n).map(|i| 1.0 + (i % 7) as f32).collect();
    let flags: Vec<u8> = (0..n).map(|i| (i % 3 == 0) as u8).collect();

    // distance factor 15 — the paper's optimum for Airfoil.
    let ctx = make_prefetcher_context(0..n, 15, (&positions[..], &masses[..], &flags[..]));
    println!(
        "prefetcher context: {} containers, distance = {} elements",
        ctx.prefetch_set().len(),
        ctx.distance()
    );

    let weighted = AtomicU64::new(0);
    for_each_prefetch(&rt, &par(), &ctx, |i| {
        if flags[i] == 1 {
            let w = positions[i] * masses[i] as f64;
            weighted.fetch_add(w as u64, Ordering::Relaxed);
        }
    });
    println!(
        "weighted sum of flagged elements: {}",
        weighted.into_inner()
    );

    // Parallel inclusive scan over the masses (prefix sums).
    let mass64: Vec<f64> = masses.iter().map(|&m| m as f64).collect();
    let mut prefix = vec![0.0f64; n];
    inclusive_scan(&rt, &par(), &mass64, &mut prefix, 0.0, |a, b| a + b);
    println!("total mass (scan tail): {:.1}", prefix[n - 1]);

    // min_element / count_if round out the algorithm set.
    let (argmin, min) =
        min_element(&rt, &par(), 0..n, |i| (positions[i] - 1000.0).abs()).expect("non-empty");
    println!("closest to x=1000: index {argmin} (|dx| = {min:.4})");
    let flagged = count_if(&rt, &par(), 0..n, |i| flags[i] == 1);
    println!("flagged elements: {flagged} / {n}");

    assert_eq!(flagged, n.div_ceil(3));
}
