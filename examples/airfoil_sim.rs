//! The paper's evaluation application end-to-end: generate the mesh,
//! declare the problem, run the five-loop time stepping under the
//! dataflow backend, and report the residual history — the programmatic
//! equivalent of the `airfoil` CLI.
//!
//! ```text
//! cargo run --release --example airfoil_sim
//! ```

use op2_hpx::airfoil::{solver, Problem, SolverConfig};
use op2_hpx::mesh::{quad_stats, QuadMesh};
use op2_hpx::op2::{Op2, Op2Config};

fn main() {
    let mesh = QuadMesh::with_cells(10_000);
    println!("mesh: {}", quad_stats(&mesh));

    let op2 = Op2::new(Op2Config::dataflow(2));
    let problem = Problem::declare(&op2, &mesh);

    let result = solver::run(
        &op2,
        &problem,
        &SolverConfig {
            niter: 100,
            window: 16,
            print_every: 0,
            ..SolverConfig::default()
        },
    );

    println!(
        "{} iterations in {:.1} ms ({:.3} ms/iter)",
        result.rms_history.len(),
        result.elapsed.as_secs_f64() * 1e3,
        result.elapsed.as_secs_f64() * 1e3 / result.rms_history.len() as f64
    );
    for (i, rms) in result.rms_history.iter().enumerate() {
        if (i + 1) % 20 == 0 {
            println!("  iter {:4}: rms = {rms:.6e}", i + 1);
        }
    }

    println!("\nper-loop breakdown:");
    for (name, stat) in op2.loop_stats() {
        println!(
            "  {name:10} x{:4}  {:7.1} ms",
            stat.invocations,
            stat.total.as_secs_f64() * 1e3
        );
    }
}
