//! The compiler story end-to-end: run `op2c` (as a library) on the
//! bundled Airfoil declaration and print both generated styles side by
//! side — stock OP2 (blocking, global barriers) vs the paper's HPX
//! redesign (future-returning loops).
//!
//! ```text
//! cargo run --release --example translate_airfoil
//! ```

use op2_hpx::translator::{translate, CodegenBackend};

const AIRFOIL_SPEC: &str = include_str!("../crates/translator/specs/airfoil.op2");

fn main() {
    let openmp = translate(AIRFOIL_SPEC, CodegenBackend::OpenMp).expect("valid spec");
    let hpx = translate(AIRFOIL_SPEC, CodegenBackend::Hpx).expect("valid spec");

    println!("===== stock OP2 backend (paper Fig 4 style) =====\n");
    print_loop(&openmp, "save_soln");

    println!("\n===== HPX dataflow backend (paper Fig 8 style) =====\n");
    print_loop(&hpx, "save_soln");

    println!("\nsummary:");
    println!(
        "  openmp: {} barriers (handle.wait() calls)",
        openmp.matches("handle.wait();").count()
    );
    println!(
        "  hpx:    {} future-returning wrappers, 0 barriers",
        hpx.matches("-> LoopHandle").count()
    );
}

/// Prints one generated wrapper function.
fn print_loop(code: &str, name: &str) {
    let needle = format!("pub fn op_par_loop_{name}");
    let start = code
        .lines()
        .position(|l| l.contains(&needle))
        .expect("wrapper present");
    // Walk back to include the doc comment.
    let lines: Vec<&str> = code.lines().collect();
    let mut doc_start = start;
    while doc_start > 0 && lines[doc_start - 1].starts_with("///") {
        doc_start -= 1;
    }
    for line in lines.iter().skip(doc_start) {
        println!("{line}");
        if *line == "}" {
            break;
        }
    }
}
